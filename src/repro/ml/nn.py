"""Neural-network layers and models on the system's operator set.

Provides affine/conv/pool/activation layers, an MLP scorer (EN2DE), an
autoencoder with dropout (HDROP), and AlexNet/VGG16/ResNet18-style CNN
feature extractors (TLVIS, Fig. 9(b)).  Architectures follow the paper's
layer inventory at reduced width so simulation stays fast; the memory
allocation *patterns* (varying conv kernel sizes across models) are
preserved because they drive eviction injection and recycling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.session import Session
from repro.runtime.handles import MatrixHandle


# ----------------------------------------------------------------- layers

def affine(sess: Session, X: MatrixHandle, W: MatrixHandle,
           b: MatrixHandle) -> MatrixHandle:
    """Fully-connected layer ``X W + b``."""
    return X @ W + b


def conv_layer(sess: Session, X: MatrixHandle, F: MatrixHandle,
               shape: dict) -> MatrixHandle:
    """conv2d + ReLU."""
    return sess.conv2d(X, F, shape).relu()


def init_weights(sess: Session, rows: int, cols: int,
                 seed: int) -> MatrixHandle:
    """Xavier-style initialization (deterministic by seed)."""
    bound = (6.0 / (rows + cols)) ** 0.5
    return sess.rand(rows, cols, min=-bound, max=bound, seed=seed)


# ------------------------------------------------------------- MLP scorer

@dataclass
class MlpModel:
    """A pre-trained feed-forward scorer (EN2DE translation model)."""

    weights: list[MatrixHandle]
    biases: list[MatrixHandle]

    @classmethod
    def pretrained(cls, sess: Session, layer_dims: list[int],
                   seed: int = 31) -> "MlpModel":
        weights, biases = [], []
        for i in range(len(layer_dims) - 1):
            weights.append(
                init_weights(sess, layer_dims[i], layer_dims[i + 1],
                             seed + 2 * i)
            )
            biases.append(sess.fill(1, layer_dims[i + 1], 0.01))
        return cls(weights, biases)

    def forward(self, sess: Session, X: MatrixHandle) -> MatrixHandle:
        """ReLU MLP with a softmax head (four FC layers in EN2DE)."""
        h = X
        for W, b in zip(self.weights[:-1], self.biases[:-1]):
            h = affine(sess, h, W, b).relu()
        return affine(sess, h, self.weights[-1], self.biases[-1]).softmax()


# ------------------------------------------------------------ autoencoder

@dataclass
class Autoencoder:
    """Two-hidden-layer autoencoder with a dropout layer (HDROP)."""

    w_enc1: MatrixHandle
    w_enc2: MatrixHandle
    w_dec1: MatrixHandle
    w_dec2: MatrixHandle

    @classmethod
    def init(cls, sess: Session, num_features: int, h1: int = 500,
             h2: int = 2, seed: int = 5) -> "Autoencoder":
        return cls(
            init_weights(sess, num_features, h1, seed),
            init_weights(sess, h1, h2, seed + 1),
            init_weights(sess, h2, h1, seed + 2),
            init_weights(sess, h1, num_features, seed + 3),
        )

    def forward(self, sess: Session, X: MatrixHandle, dropout_rate: float,
                dropout_seed: int) -> MatrixHandle:
        """Encode -> dropout -> decode; returns the reconstruction."""
        h1 = (X @ self.w_enc1).sigmoid()
        h1 = h1.dropout(dropout_rate, dropout_seed)
        code = (h1 @ self.w_enc2).sigmoid()
        d1 = (code @ self.w_dec1).sigmoid()
        return d1 @ self.w_dec2

    def loss(self, sess: Session, X: MatrixHandle,
             reconstruction: MatrixHandle) -> MatrixHandle:
        return ((X - reconstruction) ^ 2.0).mean()

    def step(self, sess: Session, X: MatrixHandle, dropout_rate: float,
             dropout_seed: int, lr: float = 0.01) -> MatrixHandle:
        """One (approximate) training step on the decoder output layer.

        The reproduction trains only the last layer in closed gradient
        form — sufficient to exercise the batch-wise forward pipeline
        that HDROP's reuse targets, with identical operator structure.
        """
        h1 = (X @ self.w_enc1).sigmoid().dropout(dropout_rate, dropout_seed)
        code = (h1 @ self.w_enc2).sigmoid()
        d1 = (code @ self.w_dec1).sigmoid()
        recon = d1 @ self.w_dec2
        grad = (d1.t() @ (recon - X)) * (2.0 / float(X.nrow))
        self.w_dec2 = (self.w_dec2 - grad * lr).evaluate()
        return self.loss(sess, X, recon)


# --------------------------------------------------------- CNN extractors

@dataclass
class ConvSpec:
    """One convolution layer: output channels + kernel edge."""

    out_channels: int
    kernel: int
    stride: int = 1
    pad: int = 0


@dataclass
class CnnModel:
    """A frozen, pre-trained CNN feature extractor."""

    name: str
    convs: list[ConvSpec]
    fc_dims: list[int]
    input_channels: int
    input_hw: int
    filters: list[MatrixHandle] = field(default_factory=list)
    fcs: list[MatrixHandle] = field(default_factory=list)

    def build(self, sess: Session, seed: int = 17) -> "CnnModel":
        """Materialize pre-trained weights (deterministic by seed)."""
        c = self.input_channels
        hw = self.input_hw
        self.filters = []
        for i, spec in enumerate(self.convs):
            self.filters.append(init_weights(
                sess, spec.out_channels, c * spec.kernel * spec.kernel,
                seed + i,
            ))
            hw = (hw + 2 * spec.pad - spec.kernel) // spec.stride + 1
            c = spec.out_channels
        flat = c * hw * hw
        self.fcs = []
        dims = [flat] + self.fc_dims
        for i in range(len(dims) - 1):
            self.fcs.append(init_weights(sess, dims[i], dims[i + 1],
                                         seed + 100 + i))
        return self

    def extract_features(self, sess: Session, images: MatrixHandle,
                         upto_fc: int | None = None) -> MatrixHandle:
        """Forward through frozen conv layers (+ optional FC prefix).

        ``upto_fc`` selects how many FC layers to include — practitioners
        compare model-layer pairs for transfer learning (paper §6.3).
        """
        h = images
        c = self.input_channels
        hw = self.input_hw
        for spec, F in zip(self.convs, self.filters):
            shape = {"N": images.nrow, "C": c, "H": hw, "W": hw,
                     "K": spec.out_channels, "R": spec.kernel,
                     "S": spec.kernel, "stride": spec.stride,
                     "pad": spec.pad}
            h = sess.conv2d(h, F, shape).relu()
            hw = (hw + 2 * spec.pad - spec.kernel) // spec.stride + 1
            c = spec.out_channels
        count = len(self.fcs) if upto_fc is None else upto_fc
        for W in self.fcs[:count]:
            h = (h @ W).relu()
        return h

    def score(self, sess: Session, images: MatrixHandle) -> MatrixHandle:
        """Class probabilities (full forward + softmax head)."""
        return self.extract_features(sess, images).softmax()


def alexnet(input_hw: int = 32, channels: int = 3) -> CnnModel:
    """AlexNet-style extractor: 2 convs (64, 128 channels) + 2 FC."""
    return CnnModel("alexnet", [
        ConvSpec(16, 5, stride=2, pad=2),
        ConvSpec(32, 3, stride=2, pad=1),
    ], [128, 64], channels, input_hw)


def vgg16(input_hw: int = 32, channels: int = 3) -> CnnModel:
    """VGG-style extractor: 3 convs (64, 192, 256 channels) + 2 FC."""
    return CnnModel("vgg16", [
        ConvSpec(16, 3, stride=1, pad=1),
        ConvSpec(32, 3, stride=2, pad=1),
        ConvSpec(48, 3, stride=2, pad=1),
    ], [160, 64], channels, input_hw)


def resnet18(input_hw: int = 32, channels: int = 3) -> CnnModel:
    """ResNet-style extractor: 4 stages of 3x3 convs + 1 FC."""
    return CnnModel("resnet18", [
        ConvSpec(16, 7, stride=2, pad=3),
        ConvSpec(24, 3, stride=2, pad=1),
        ConvSpec(32, 3, stride=2, pad=1),
        ConvSpec(48, 3, stride=2, pad=1),
    ], [64], channels, input_hw)
