"""ML algorithm library built on the session's operator set."""

from repro.ml.cleaning import (
    impute_by_mean,
    impute_by_mode,
    normalize,
    outlier_by_iqr,
    pca_project,
    scale,
    under_sampling,
)
from repro.ml.l2svm import (
    l2svm,
    l2svm_accuracy,
    l2svm_core_iteration,
    l2svm_predict,
)
from repro.ml.linreg import lin_reg_ds, lin_reg_predict, r2_score
from repro.ml.mlogreg import mlogreg, mlogreg_accuracy, mlogreg_predict
from repro.ml.nn import (
    Autoencoder,
    CnnModel,
    ConvSpec,
    MlpModel,
    affine,
    alexnet,
    init_weights,
    resnet18,
    vgg16,
)
from repro.ml.pnmf import pnmf, pnmf_iteration, pnmf_loss
from repro.ml.transforms import (
    equi_width_bin,
    minibatch,
    one_hot,
    recode,
    transform_encode,
)
from repro.ml.tuning import (
    cross_validate_linreg,
    grid_search_linreg,
    kfold_indices,
    successive_halving,
    weighted_ensemble,
)

__all__ = [
    "impute_by_mean", "impute_by_mode", "normalize", "outlier_by_iqr",
    "pca_project", "scale", "under_sampling",
    "l2svm", "l2svm_accuracy", "l2svm_core_iteration", "l2svm_predict",
    "lin_reg_ds", "lin_reg_predict", "r2_score",
    "mlogreg", "mlogreg_accuracy", "mlogreg_predict",
    "Autoencoder", "CnnModel", "ConvSpec", "MlpModel", "affine",
    "alexnet", "init_weights", "resnet18", "vgg16",
    "pnmf", "pnmf_iteration", "pnmf_loss",
    "equi_width_bin", "minibatch", "one_hot", "recode", "transform_encode",
    "cross_validate_linreg", "grid_search_linreg", "kfold_indices",
    "successive_halving", "weighted_ensemble",
]
