"""Baseline system emulations (paper §6.1).

The paper emulates competitor frameworks inside the same engine via
hand-optimized scripts; this package does the same as executable
configurations and workload branches:

* Base / Base-A / LIMA / HELIX / MPH-NA / MPH-F — presets on
  :class:`repro.common.config.MemphisConfig`;
* CoorDL — application-level caching of the CPU input-data-pipeline
  component (branch in :mod:`repro.workloads.hdrop`);
* Clipper — application-level prediction memoization (branch in
  :mod:`repro.workloads.en2de`);
* VISTA — hand-CSE across transfer-learning layer pipelines (branch in
  :mod:`repro.workloads.tlvis`);
* PyTorch / PyTorch-Clr — :func:`repro.baselines.pytorch_sim.pytorch_config`.
"""

from repro.baselines.pytorch_sim import pytorch_config

__all__ = ["pytorch_config"]
