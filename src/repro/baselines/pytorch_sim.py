"""PyTorch baseline simulation (paper §6.1, §6.3).

PyTorch is modelled on the same GPU device simulator as MEMPHIS so
numbers are directly comparable, with its defining properties:

* eager execution with a low-overhead dispatcher (``torch.compile``
  removes most interpretation overhead — modelled as a reduced
  per-instruction cost);
* the *caching memory allocator*: freed blocks are pooled and recycled
  by exact size, never returned to the device unless allocation fails
  (``MODE_POOL``);
* **no semantic reuse**: repeated predictions and repeated feature
  extractions recompute;
* ``torch.compile`` holds allocations across models and runs out of
  memory on multi-model pipelines unless the user manually calls
  ``empty_cache()`` between models (PyTorch-Clr) [31, 32].
"""

from __future__ import annotations

from repro.common.config import MemphisConfig


def pytorch_config() -> MemphisConfig:
    """Configuration modelling PyTorch 2.1 with torch.compile."""
    cfg = MemphisConfig.base()
    cfg.gpu_enabled = True
    cfg.spark_enabled = False
    cfg.gpu_memory_mode = "pool"
    # compiled eager dispatch: ~4x lower per-instruction overhead than
    # the ML system's interpreted instruction stream
    cfg.cpu.instruction_overhead_s /= 4.0
    cfg.cpu.trace_overhead_s = 0.0
    cfg.cpu.probe_overhead_s = 0.0
    # kernel launches are faster through CUDA graphs
    cfg.gpu.kernel_launch_s /= 2.0
    return cfg
