"""Configured capacity budgets for the canonical memory regions.

The static memory planner (``repro.analysis.memplan``) and the
placement feasibility check (``repro.runtime.placement``) both need to
know, *at compile time*, how many bytes each :class:`~repro.memory.region.MemoryRegion`
will be created with at runtime — without instantiating any manager.
This module is the single source of truth for that mapping: it mirrors,
byte for byte, the ``add_region`` calls made by the four managers
(`LineageCache`, `BufferPool`, `BlockManager`/`SparkCacheManager`,
`GpuMemoryManager`) when a :class:`~repro.core.session.Session` is
constructed.

It deliberately imports only ``repro.common.config`` so that both the
analysis layer and the runtime placement layer can consume it without
creating an import cycle (analysis already imports placement for the
opcode tables).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.common.config import MemphisConfig


#: regions owned by the shared substrate in multi-tenant mode
#: (``repro.server``): the driver lineage-cache tier and its disk spill
#: tier are the only regions whose ledgers are shared across sessions;
#: every other region stays session-private (one buffer pool / Spark
#: cluster / GPU per session).  The admission gate restricts a block's
#: plan demands to this subset before strict bulk reservation.
SHARED_REGIONS: tuple[str, ...] = ("CP", "DISK")


def shared_demands(demands: dict[str, int]) -> dict[str, int]:
    """The subset of a plan's region demands the shared substrate owns."""
    return {
        name: nbytes for name, nbytes in demands.items()
        if name in SHARED_REGIONS
    }


class RegionBudget(NamedTuple):
    """Compile-time view of one region's configured capacity."""

    #: canonical region name (``repro.memory.REGION_*``).
    name: str
    #: capacity in bytes the region will be registered with.
    capacity: int
    #: ``True`` when the ledger does not enforce the capacity
    #: (``MemoryRegion.unlimited``): demand beyond ``capacity`` is
    #: admitted rather than evicted, so static peaks must not be
    #: clamped for these regions.
    unlimited: bool


def region_capacities(config: MemphisConfig) -> dict[str, RegionBudget]:
    """Per-region budgets a session built from ``config`` will enforce.

    Mirrors the runtime registrations:

    * ``CP``/``DISK`` — ``LineageCache.__init__`` (driver payload tier
      and its disk spill tier, §3.3).
    * ``CPU_BP`` — ``BufferPool.__init__``.
    * ``SP_BLOCKS`` — ``BlockManager.__init__``: the *aggregate*
      executor storage memory (``storage_memory x num_executors``).
    * ``SP_CACHE`` — ``SparkCacheManager.__init__``: the reuse share of
      Spark storage (§4.1), derived from the block-manager capacity.
    * ``GPU`` — ``GpuMemoryManager.__init__``: device memory.
    """
    # local alias avoids importing repro.memory (which imports this
    # module at the end of its __init__)
    sp_blocks = int(config.spark.storage_memory) * config.spark.num_executors
    return {
        "CP": RegionBudget("CP", config.cache.driver_cache_bytes,
                           config.cache.unlimited),
        "DISK": RegionBudget("DISK", config.cache.disk_cache_bytes, False),
        "CPU_BP": RegionBudget("CPU_BP", config.cpu.buffer_pool_bytes, False),
        "SP_BLOCKS": RegionBudget("SP_BLOCKS", sp_blocks, False),
        "SP_CACHE": RegionBudget(
            "SP_CACHE", int(sp_blocks * config.cache.spark_cache_fraction),
            config.cache.unlimited,
        ),
        "GPU": RegionBudget("GPU", config.gpu.device_memory, False),
    }
