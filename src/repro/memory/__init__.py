"""Unified memory-arbitration substrate (paper pillar 2, §3.3/§4.2/§5.2).

One coordinated hierarchy instead of four silos: the driver lineage
cache, the CPU buffer pool, the Spark block manager / RDD cache tier,
and the GPU unified memory manager all route *reservations* (the
reserve/commit/release byte protocol) and *victim selection* (the
``core/policies.py`` scoring registry) through a shared
:class:`MemoryArbiter` over per-backend :class:`MemoryRegion` ledgers,
while keeping their backend-specific physics (disk spilling, shuffle
partition granularity, free-list recycling, pinning) local.

The arbiter is also the coordination point for the paper's *holistic*
behaviours: cross-region residency consultation (GPU eviction checks
driver-cache residency before paying a device-to-host transfer),
cross-region pressure callbacks, the spill-vs-drop cost decision, and
delayed caching as an admission policy (§5.2).
"""

from repro.memory.arbiter import MemoryArbiter, PlanReservation
from repro.memory.budget import (
    SHARED_REGIONS,
    RegionBudget,
    region_capacities,
    shared_demands,
)
from repro.memory.protocols import Evictable, Spillable
from repro.memory.region import MemoryRegion

#: canonical region names registered by the four memory managers.
REGION_CP = "CP"  #: driver-local lineage-cache payloads.
REGION_DISK = "DISK"  #: disk-evicted driver-cache binaries (§3.3).
REGION_BUFFERPOOL = "CPU_BP"  #: CPU buffer-pool matrix blocks.
REGION_SPARK_STORAGE = "SP_BLOCKS"  #: aggregate executor storage memory.
REGION_SPARK_CACHE = "SP_CACHE"  #: reuse share of Spark storage (§4.1).
REGION_GPU = "GPU"  #: device memory under the unified GPU manager.

__all__ = [
    "MemoryArbiter",
    "MemoryRegion",
    "PlanReservation",
    "RegionBudget",
    "region_capacities",
    "SHARED_REGIONS",
    "shared_demands",
    "Evictable",
    "Spillable",
    "REGION_CP",
    "REGION_DISK",
    "REGION_BUFFERPOOL",
    "REGION_SPARK_STORAGE",
    "REGION_SPARK_CACHE",
    "REGION_GPU",
]
