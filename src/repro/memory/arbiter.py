"""The memory arbiter: reserve/commit/release + policy-driven eviction.

The decision half of the arbitration substrate.  Every manager routes
its reservations and victim selection through here:

* **Reservation protocol** — :meth:`reserve` guarantees space in a
  region, evicting policy-selected victims through a caller-supplied
  callback until the request fits; :meth:`commit`/:meth:`cancel`/
  :meth:`release` drive the byte ledgers.
* **Victim selection** — :meth:`select_victim` is the only place a
  victim is ever chosen; it applies the region's policy from the
  ``core/policies.py`` registry (or a caller-supplied score for
  context-dependent normalisation, e.g. the GPU's Eq. 2 max-cost term).
* **Spill-vs-drop** — :meth:`should_spill` owns the recompute-cost vs
  disk-round-trip break-even (§3.3) and the disk-region budget check.
* **Admission** — :meth:`admit` implements delayed caching (§5.2) as a
  region admission policy rather than a cache-local flag.
* **Cross-region coordination** — residency probes let one region ask
  whether an object is resident elsewhere before paying a transfer
  (GPU eviction consults driver-cache residency); pressure callbacks
  give other regions a chance to free memory when a reservation cannot
  be satisfied locally.
* **Fault hooks** — the spill/restore/alloc fault draw points of
  ``repro.faults`` live behind the arbiter, so every region's spill
  path shares one deterministic draw sequence.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.common.stats import (
    FAULT_RESTORE_IO_ERRORS,
    FAULT_SPILL_IO_ERRORS,
    MEM_EVICTIONS,
    MEM_PLAN_RESERVE_FAILURES,
    MEM_PLAN_RESERVES,
    MEM_PRESSURE_EVENTS,
    MEM_RESERVE_FAILURES,
    MEM_RESERVES,
    MEM_RESTORES,
    MEM_SPILLS,
    Stats,
)
from repro.core.policies import EvictionPolicy, make_policy
from repro.faults.injector import NULL_INJECTOR
from repro.faults.plan import KIND_RESTORE_IO, KIND_SPILL_IO
from repro.memory.region import MemoryRegion
from repro.obs.events import (
    EV_MEM_EVICT,
    EV_MEM_PLAN_RESERVE,
    EV_MEM_PRESSURE,
    EV_MEM_RESERVE,
    EV_MEM_RESTORE,
    EV_MEM_SPILL,
    LANE_CP,
)
from repro.obs.tracer import NULL_TRACER


class PlanReservation:
    """Outstanding holds of one :meth:`MemoryArbiter.reserve_plan` call.

    The holds sit in each region's ``reserved`` counter until the plan
    is either committed (the block was verified and will execute) or
    cancelled (verification failed / the caller bailed out).  Committing
    *releases* the holds rather than converting them to ``used``: the
    managers charge their own usage instruction by instruction during
    execution, so keeping the bulk hold would double-count every byte.
    The reservation therefore guarantees *admissibility at block start*
    — the substrate a multi-tenant server needs for admission control —
    while leaving the instruction-level ledger accounting untouched.
    """

    __slots__ = ("arbiter", "holds", "settled")

    def __init__(self, arbiter: "MemoryArbiter",
                 holds: dict[str, int]) -> None:
        self.arbiter = arbiter
        #: region name -> bytes currently held in ``reserved``.
        self.holds = holds
        self.settled = False

    @property
    def total(self) -> int:
        return sum(self.holds.values())

    def commit(self) -> None:
        """Admit the plan: drop the holds, execution charges for itself."""
        self._drop()

    def cancel(self) -> None:
        """Abandon the plan (verification failed): drop the holds."""
        self._drop()

    def _drop(self) -> None:
        if self.settled:
            return
        self.settled = True
        for name, size in self.holds.items():
            if size:
                self.arbiter.cancel(name, size)


class _SpillModel:
    """Per-region spill cost model: break-even + destination budget."""

    __slots__ = ("enabled", "disk_region", "bytes_per_s", "flops_per_s")

    def __init__(self, enabled: bool, disk_region: Optional[str],
                 bytes_per_s: float, flops_per_s: float) -> None:
        self.enabled = enabled
        self.disk_region = disk_region
        self.bytes_per_s = bytes_per_s
        self.flops_per_s = flops_per_s


class MemoryArbiter:
    """Shared reserve/commit/release arbiter over named memory regions.

    One instance per :class:`~repro.core.session.Session` coordinates
    all four managers; standalone managers (unit tests, tools) create a
    private arbiter, so the substrate is always in the loop.
    """

    def __init__(self, stats: Optional[Stats] = None, tracer=None,
                 faults=None) -> None:
        self.stats = stats if stats is not None else Stats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults if faults is not None else NULL_INJECTOR
        self._regions: dict[str, MemoryRegion] = {}
        self._spill: dict[str, _SpillModel] = {}
        #: region -> callbacks fired when a reservation cannot be met
        #: from the region's own candidates (cross-region pressure).
        self._pressure: dict[str, list[Callable[[MemoryRegion, int], int]]] = {}
        #: region -> probe(token) -> bool: is ``token``'s data resident
        #: in that region?  Consulted by :meth:`resident_elsewhere`.
        self._residency: dict[str, Callable[[object], bool]] = {}

    # -- region registry ------------------------------------------------------

    def add_region(self, name: str, capacity: int, *,
                   policy: Optional[EvictionPolicy] = None,
                   policy_name=None,
                   unlimited: bool = False,
                   watermark: float = 0.9) -> MemoryRegion:
        """Register a region; ``policy_name`` resolves via the registry."""
        if name in self._regions:
            raise ValueError(f"memory region {name!r} already registered")
        if policy is None and policy_name is not None:
            policy = make_policy(policy_name)
        region = MemoryRegion(name, capacity, policy=policy,
                              unlimited=unlimited, watermark=watermark)
        self._regions[name] = region
        return region

    def region(self, name: str) -> MemoryRegion:
        return self._regions[name]

    def has_region(self, name: str) -> bool:
        return name in self._regions

    def regions(self) -> list[MemoryRegion]:
        return list(self._regions.values())

    def check(self) -> None:
        """Assert every region's ledger invariants (tests/debugging)."""
        for region in self._regions.values():
            region.check()

    # -- reservation protocol -------------------------------------------------

    def reserve(self, name: str, size: int, *,
                candidates: Optional[Callable[[], Sequence]] = None,
                evict: Optional[Callable[[object], None]] = None,
                now: float = 0.0,
                score: Optional[Callable[[object], float]] = None) -> bool:
        """Hold ``size`` bytes in region ``name``, evicting to make room.

        Victims come from ``candidates()`` (re-evaluated after every
        eviction), chosen by :meth:`select_victim`; ``evict(victim)``
        must release the victim's bytes via :meth:`release`.  When the
        region cannot satisfy the request from its own candidates, the
        region's pressure callbacks run once before the reservation
        fails.  On success the bytes sit in ``reserved`` until
        :meth:`commit` or :meth:`cancel`.
        """
        region = self._regions[name]
        if not region.unlimited:
            if size > region.capacity:
                self.stats.inc(MEM_RESERVE_FAILURES)
                return False
            pressure_fired = False
            while region.used + region.reserved + size > region.capacity:
                victim = None
                if candidates is not None and evict is not None:
                    victim = self.select_victim(
                        name, candidates(), now=now, score=score
                    )
                if victim is None:
                    if not pressure_fired and self._fire_pressure(region, size):
                        pressure_fired = True
                        continue
                    self.stats.inc(MEM_RESERVE_FAILURES)
                    if self.tracer.enabled:
                        self.tracer.instant(
                            EV_MEM_RESERVE, LANE_CP, region=name,
                            nbytes=size, ok=False,
                        )
                    return False
                used_before = region.used
                evict(victim)
                if region.used >= used_before:
                    # the eviction callback failed to release anything;
                    # bail out instead of spinning on the same victim
                    self.stats.inc(MEM_RESERVE_FAILURES)
                    return False
        region.reserve(size)
        self.stats.inc(MEM_RESERVES)
        return True

    def reserve_plan(self, demands: dict[str, int], *,
                     strict: bool = False) -> Optional[PlanReservation]:
        """Two-phase bulk reservation of a static plan's peak footprint.

        ``demands`` maps region names to the statically predicted peak
        bytes the block will put through each region (see
        ``repro.analysis.memplan``).  For every *registered, bounded*
        region the arbiter holds ``min(demand, capacity) - used -
        reserved`` bytes (never less than zero): the part of the
        predicted peak not already backed by resident or reserved data.
        Unlimited regions and unknown region names are skipped — there
        is nothing to admit against.

        All-or-nothing: if any region cannot take its hold, the partial
        holds are rolled back and ``None`` is returned.  In the default
        (lenient) mode a hold is always grantable because it is clamped
        to the region's remaining headroom — the call then serves as an
        accounting point (``memory/plan_reserves``) and a handle for the
        commit/cancel protocol.  With ``strict=True`` the *unclamped*
        residual demand must fit under ``capacity - pinned``; a block
        whose predicted peak cannot fit even after evicting every
        unpinned byte is refused up front.  Multi-tenant admission
        control (ROADMAP item 1) layers on the strict mode.

        The caller must settle the returned :class:`PlanReservation`
        via ``commit()`` (verified, about to execute) or ``cancel()``
        (verification failed) — both drop the holds; see
        :class:`PlanReservation` for why commit does not convert them
        to ``used``.
        """
        holds: dict[str, int] = {}
        for name, demand in demands.items():
            region = self._regions.get(name)
            if region is None or region.unlimited or demand <= 0:
                continue
            bounded = min(demand, region.capacity)
            need = bounded - region.used - region.reserved
            if strict:
                residual = max(demand - region.used, 0)
                if residual > region.capacity - region.pinned:
                    for held, size in holds.items():
                        self.cancel(held, size)
                    self.stats.inc(MEM_PLAN_RESERVE_FAILURES)
                    if self.tracer.enabled:
                        self.tracer.instant(
                            EV_MEM_PLAN_RESERVE, LANE_CP, region=name,
                            nbytes=demand, ok=False,
                        )
                    return None
            if need <= 0:
                continue
            region.reserve(need)
            holds[name] = need
        self.stats.inc(MEM_PLAN_RESERVES)
        if self.tracer.enabled:
            self.tracer.instant(
                EV_MEM_PLAN_RESERVE, LANE_CP,
                regions=",".join(sorted(holds)) or "-",
                nbytes=sum(holds.values()), ok=True,
            )
        return PlanReservation(self, holds)

    def ensure_space(self, name: str, size: int, *,
                     candidates: Optional[Callable[[], Sequence]] = None,
                     evict: Optional[Callable[[object], None]] = None,
                     now: float = 0.0,
                     score: Optional[Callable[[object], float]] = None) -> bool:
        """MAKE_SPACE: guarantee ``size`` bytes fit, without claiming them."""
        if not self.reserve(name, size, candidates=candidates, evict=evict,
                            now=now, score=score):
            return False
        self._regions[name].cancel(size)
        return True

    def commit(self, name: str, size: int) -> None:
        self._regions[name].commit(size)

    def cancel(self, name: str, size: int) -> None:
        self._regions[name].cancel(size)

    def acquire(self, name: str, size: int) -> None:
        """One-shot reserve+commit (mirroring an external allocator)."""
        self._regions[name].acquire(size)

    def release(self, name: str, size: int) -> None:
        self._regions[name].release(size)

    def pin(self, name: str, size: int) -> None:
        self._regions[name].pin(size)

    def unpin(self, name: str, size: int) -> None:
        self._regions[name].unpin(size)

    # -- per-tenant fair-share quotas (repro.server) ---------------------------

    def set_quota(self, name: str, tenant: str,
                  nbytes: Optional[int]) -> None:
        """Set (or clear) a tenant's byte quota in region ``name``."""
        self._regions[name].set_quota(tenant, nbytes)

    def charge_tenant(self, name: str, tenant: str, delta: int) -> None:
        """Attribute ``delta`` used bytes of region ``name`` to a tenant."""
        self._regions[name].charge_tenant(tenant, delta)

    def tenant_usage(self, name: str, tenant: str) -> int:
        return self._regions[name].tenant_usage(tenant)

    def quota_headroom(self, name: str, tenant: str) -> Optional[int]:
        """Bytes the tenant may still use in ``name`` (None = no cap)."""
        return self._regions[name].quota_headroom(tenant)

    def over_quota(self, name: str, tenant: str) -> bool:
        return self._regions[name].over_quota(tenant)

    # -- victim selection -----------------------------------------------------

    def select_victim(self, name: str, candidates: Iterable, *,
                      now: float = 0.0,
                      score: Optional[Callable[[object], float]] = None):
        """Minimum-score candidate under the region's policy, or ``None``.

        ``score`` overrides the policy for context-dependent scoring
        (the GPU's Eq. 2 needs the candidate set's max cost); the
        region's policy from ``core/policies.py`` is the default.
        """
        items = candidates if isinstance(candidates, list) \
            else list(candidates)
        if not items:
            return None
        if score is None:
            policy = self._regions[name].policy
            if policy is None:
                return items[0]
            return min(items, key=lambda e: policy.score(e, now))
        return min(items, key=score)

    # -- admission (delayed caching, §5.2) ------------------------------------

    def admit(self, name: str, seen_count: int, delay_factor: int) -> bool:
        """Admission policy: admit the object on its n-th appearance.

        Delay factor *n* > 1 defers caching until the n-th put of the
        same lineage (paper §5.2); auto-tuning overrides *n* per block.
        """
        return seen_count >= delay_factor

    # -- spill-vs-drop decision (§3.3) ----------------------------------------

    def configure_spill(self, name: str, *, enabled: bool,
                        disk_region: Optional[str],
                        bytes_per_s: float, flops_per_s: float) -> None:
        """Attach a spill cost model to region ``name``."""
        self._spill[name] = _SpillModel(enabled, disk_region,
                                        bytes_per_s, flops_per_s)

    def should_spill(self, name: str, size: int, compute_cost: float) -> bool:
        """Spill only when recomputation costs more than a disk round trip
        and the destination region has budget left."""
        model = self._spill.get(name)
        if model is None or not model.enabled:
            return False
        if model.disk_region is not None:
            disk = self._regions[model.disk_region]
            if disk.used + size > disk.capacity:
                return False
        recompute_time = compute_cost / model.flops_per_s
        roundtrip_time = 2.0 * size / model.bytes_per_s
        return recompute_time > roundtrip_time

    # -- cross-region coordination --------------------------------------------

    def register_residency(self, name: str,
                           probe: Callable[[object], bool]) -> None:
        """Register ``probe(token) -> bool`` answering residency in ``name``."""
        self._residency[name] = probe

    def resident_elsewhere(self, token: object,
                           exclude: tuple = ()) -> bool:
        """Whether ``token``'s data is resident in any other region.

        The holistic-eviction consultation: before paying a transfer to
        save an object, a region asks whether another tier already holds
        a copy (e.g. GPU D2H eviction vs an existing driver-cache copy).
        """
        for name, probe in self._residency.items():
            if name in exclude:
                continue
            if probe(token):
                return True
        return False

    def on_pressure(self, name: str,
                    callback: Callable[[MemoryRegion, int], int]) -> None:
        """Fire ``callback(region, needed)`` when ``name`` cannot reserve.

        The callback returns the bytes it freed (possibly by evicting in
        *other* regions whose payloads shadow this one); a positive
        return re-enters the reservation loop.
        """
        self._pressure.setdefault(name, []).append(callback)

    def notify_pressure(self, name: str, needed: int) -> bool:
        """Fire region ``name``'s pressure callbacks explicitly.

        Used by the shared-substrate admission gate (``repro.server``):
        a refused block surfaces as a pressure event so schedulers
        observing the arbiter see backpressure, not just a counter.
        """
        region = self._regions.get(name)
        if region is None:
            return False
        return self._fire_pressure(region, needed)

    def _fire_pressure(self, region: MemoryRegion, needed: int) -> bool:
        callbacks = self._pressure.get(region.name)
        if not callbacks:
            return False
        self.stats.inc(MEM_PRESSURE_EVENTS)
        if self.tracer.enabled:
            self.tracer.instant(EV_MEM_PRESSURE, LANE_CP,
                                region=region.name, nbytes=needed)
        freed = 0
        for callback in callbacks:
            freed += int(callback(region, needed) or 0)
        return freed > 0

    # -- fault hooks (repro.faults draw points) -------------------------------

    def spill_fault(self, lane: str = LANE_CP, **details) -> bool:
        """Draw the next spill-I/O fault; records counter + trace on fire."""
        if not (self.faults.enabled and self.faults.spill_io()):
            return False
        self.stats.inc(FAULT_SPILL_IO_ERRORS)
        self.faults.injected(KIND_SPILL_IO, lane, **details)
        return True

    def restore_fault(self, lane: str = LANE_CP, **details) -> bool:
        """Draw the next restore-I/O fault; records counter + trace on fire."""
        if not (self.faults.enabled and self.faults.restore_io()):
            return False
        self.stats.inc(FAULT_RESTORE_IO_ERRORS)
        self.faults.injected(KIND_RESTORE_IO, lane, **details)
        return True

    def alloc_fault(self):
        """Draw point for the next (GPU) allocation request."""
        if not self.faults.enabled:
            return None
        return self.faults.gpu_alloc()

    # -- observability --------------------------------------------------------

    def record_evict(self, name: str, nbytes: int, **args) -> None:
        """Note one eviction in the ``memory/`` namespace."""
        self.stats.inc(MEM_EVICTIONS)
        if self.tracer.enabled:
            self.tracer.instant(EV_MEM_EVICT, LANE_CP, region=name,
                                nbytes=nbytes, **args)

    def record_spill(self, name: str, nbytes: int, **args) -> None:
        """Note one payload moving to a slower tier."""
        self.stats.inc(MEM_SPILLS)
        if self.tracer.enabled:
            self.tracer.instant(EV_MEM_SPILL, LANE_CP, region=name,
                                nbytes=nbytes, **args)

    def record_restore(self, name: str, nbytes: int, **args) -> None:
        """Note one payload restored from a slower tier."""
        self.stats.inc(MEM_RESTORES)
        if self.tracer.enabled:
            self.tracer.instant(EV_MEM_RESTORE, LANE_CP, region=name,
                                nbytes=nbytes, **args)

    def snapshot(self) -> list[dict]:
        """Per-region accounting snapshots for diagnostics."""
        return [r.snapshot() for r in self._regions.values()]
