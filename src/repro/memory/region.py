"""Per-backend memory regions: capacity + byte ledgers + watermarks.

A :class:`MemoryRegion` is the accounting half of the arbitration
substrate: reserved/used/pinned byte ledgers under one capacity, with
the invariant ``used + reserved + free == capacity`` (``free`` clamps
at zero for unlimited regions, which may legally overcommit).  The
decision half — victim selection, spill-vs-drop, admission, pressure —
lives in :class:`~repro.memory.arbiter.MemoryArbiter`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policies import EvictionPolicy


class MemoryRegion:
    """One backend's byte ledger under the shared arbiter.

    The reservation protocol is two-phase: :meth:`reserve` holds bytes
    (space is guaranteed but not yet owned), then :meth:`commit` turns
    the hold into usage or :meth:`cancel` drops it.  :meth:`release`
    returns used bytes (eviction, unpersist, free).  :meth:`acquire`
    is the one-shot reserve+commit used when the caller has already
    ensured space (e.g. mirroring a device allocator's own ledger).
    """

    __slots__ = (
        "name", "capacity", "unlimited", "policy", "watermark",
        "used", "reserved", "pinned", "peak_used",
    )

    def __init__(self, name: str, capacity: int,
                 policy: Optional[EvictionPolicy] = None,
                 unlimited: bool = False,
                 watermark: float = 0.9) -> None:
        self.name = name
        self.capacity = int(capacity)
        self.unlimited = unlimited
        #: region-local eviction policy (``core/policies.py`` registry);
        #: the single source of victim order for this region.
        self.policy = policy
        #: occupancy fraction above which the arbiter reports pressure.
        self.watermark = watermark
        self.used = 0
        self.reserved = 0
        self.pinned = 0
        self.peak_used = 0

    # -- queries ------------------------------------------------------------

    @property
    def free(self) -> int:
        """Unclaimed bytes; ``used + reserved + free == capacity``."""
        return max(self.capacity - self.used - self.reserved, 0)

    @property
    def occupancy(self) -> float:
        """Claimed fraction of capacity (may exceed 1.0 if unlimited)."""
        if self.capacity <= 0:
            return 0.0
        return (self.used + self.reserved) / self.capacity

    @property
    def over_watermark(self) -> bool:
        return not self.unlimited and self.occupancy >= self.watermark

    def fits(self, size: int) -> bool:
        """Whether ``size`` more bytes fit without any eviction."""
        return self.unlimited or \
            self.used + self.reserved + size <= self.capacity

    # -- ledger transitions -------------------------------------------------

    def reserve(self, size: int) -> None:
        self.reserved += size

    def commit(self, size: int) -> None:
        """Turn ``size`` reserved bytes into used bytes."""
        self.reserved -= size
        self.used += size
        if self.used > self.peak_used:
            self.peak_used = self.used

    def cancel(self, size: int) -> None:
        """Drop a reservation without using it."""
        self.reserved -= size

    def acquire(self, size: int) -> None:
        """One-shot reserve+commit (caller already ensured space)."""
        self.used += size
        if self.used > self.peak_used:
            self.peak_used = self.used

    def release(self, size: int) -> None:
        """Return ``size`` used bytes to the region."""
        self.used -= size

    def pin(self, size: int) -> None:
        """Mark ``size`` used bytes unevictable (in use by an operator)."""
        self.pinned += size

    def unpin(self, size: int) -> None:
        self.pinned -= size

    def reset(self) -> None:
        """Drop all ledgers (cache clear); capacity/policy survive."""
        self.used = 0
        self.reserved = 0
        self.pinned = 0

    def check(self) -> None:
        """Assert the ledger invariants (used by the property tests)."""
        assert self.used >= 0, f"{self.name}: negative used ({self.used})"
        assert self.reserved >= 0, \
            f"{self.name}: negative reserved ({self.reserved})"
        assert self.pinned >= 0, \
            f"{self.name}: negative pinned ({self.pinned})"
        assert self.used + self.reserved + self.free == self.capacity or \
            self.unlimited or self.used + self.reserved > self.capacity, \
            f"{self.name}: ledger does not tile capacity"
        if not self.unlimited:
            assert self.used + self.reserved <= self.capacity, (
                f"{self.name}: overcommitted "
                f"({self.used}+{self.reserved} > {self.capacity})"
            )

    def snapshot(self) -> dict:
        """Accounting snapshot for diagnostics and ``obs`` summaries."""
        return {
            "region": self.name,
            "capacity": self.capacity,
            "used": self.used,
            "reserved": self.reserved,
            "pinned": self.pinned,
            "free": self.free,
            "peak_used": self.peak_used,
            "unlimited": self.unlimited,
            "policy": getattr(self.policy, "name", None),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryRegion({self.name}, {self.used}+{self.reserved}r"
                f"/{self.capacity}, pinned={self.pinned})")
