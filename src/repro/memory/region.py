"""Per-backend memory regions: capacity + byte ledgers + watermarks.

A :class:`MemoryRegion` is the accounting half of the arbitration
substrate: reserved/used/pinned byte ledgers under one capacity, with
the invariant ``used + reserved + free == capacity`` (``free`` clamps
at zero for unlimited regions, which may legally overcommit).  The
decision half — victim selection, spill-vs-drop, admission, pressure —
lives in :class:`~repro.memory.arbiter.MemoryArbiter`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policies import EvictionPolicy


class MemoryRegion:
    """One backend's byte ledger under the shared arbiter.

    The reservation protocol is two-phase: :meth:`reserve` holds bytes
    (space is guaranteed but not yet owned), then :meth:`commit` turns
    the hold into usage or :meth:`cancel` drops it.  :meth:`release`
    returns used bytes (eviction, unpersist, free).  :meth:`acquire`
    is the one-shot reserve+commit used when the caller has already
    ensured space (e.g. mirroring a device allocator's own ledger).
    """

    __slots__ = (
        "name", "capacity", "unlimited", "policy", "watermark",
        "used", "reserved", "pinned", "peak_used",
        "quotas", "tenant_used",
    )

    def __init__(self, name: str, capacity: int,
                 policy: Optional[EvictionPolicy] = None,
                 unlimited: bool = False,
                 watermark: float = 0.9) -> None:
        self.name = name
        self.capacity = int(capacity)
        self.unlimited = unlimited
        #: region-local eviction policy (``core/policies.py`` registry);
        #: the single source of victim order for this region.
        self.policy = policy
        #: occupancy fraction above which the arbiter reports pressure.
        self.watermark = watermark
        self.used = 0
        self.reserved = 0
        self.pinned = 0
        self.peak_used = 0
        #: per-tenant fair-share byte quotas (``repro.server``); ``None``
        #: until the first quota is set, so single-tenant sessions pay
        #: nothing for the multi-tenant ledgers.
        self.quotas: Optional[dict[str, int]] = None
        #: per-tenant used bytes; tracked once any quota or tenant
        #: charge exists.
        self.tenant_used: Optional[dict[str, int]] = None

    # -- queries ------------------------------------------------------------

    @property
    def free(self) -> int:
        """Unclaimed bytes; ``used + reserved + free == capacity``."""
        return max(self.capacity - self.used - self.reserved, 0)

    @property
    def occupancy(self) -> float:
        """Claimed fraction of capacity (may exceed 1.0 if unlimited)."""
        if self.capacity <= 0:
            return 0.0
        return (self.used + self.reserved) / self.capacity

    @property
    def over_watermark(self) -> bool:
        return not self.unlimited and self.occupancy >= self.watermark

    def fits(self, size: int) -> bool:
        """Whether ``size`` more bytes fit without any eviction."""
        return self.unlimited or \
            self.used + self.reserved + size <= self.capacity

    # -- ledger transitions -------------------------------------------------

    def reserve(self, size: int) -> None:
        self.reserved += size

    def commit(self, size: int) -> None:
        """Turn ``size`` reserved bytes into used bytes."""
        self.reserved -= size
        self.used += size
        if self.used > self.peak_used:
            self.peak_used = self.used

    def cancel(self, size: int) -> None:
        """Drop a reservation without using it."""
        self.reserved -= size

    def acquire(self, size: int) -> None:
        """One-shot reserve+commit (caller already ensured space)."""
        self.used += size
        if self.used > self.peak_used:
            self.peak_used = self.used

    def release(self, size: int) -> None:
        """Return ``size`` used bytes to the region."""
        self.used -= size

    def pin(self, size: int) -> None:
        """Mark ``size`` used bytes unevictable (in use by an operator)."""
        self.pinned += size

    def unpin(self, size: int) -> None:
        self.pinned -= size

    # -- per-tenant fair-share ledgers (repro.server) -----------------------

    def set_quota(self, tenant: str, nbytes: Optional[int]) -> None:
        """Set (or clear, with ``None``) a tenant's byte quota."""
        if self.quotas is None:
            self.quotas = {}
        if nbytes is None:
            self.quotas.pop(tenant, None)
        else:
            self.quotas[tenant] = int(nbytes)

    def quota(self, tenant: str) -> Optional[int]:
        """The tenant's quota in bytes, or ``None`` (no cap)."""
        if self.quotas is None:
            return None
        return self.quotas.get(tenant)

    def charge_tenant(self, tenant: str, delta: int) -> None:
        """Attribute ``delta`` used bytes (possibly negative) to a tenant.

        A sub-ledger of ``used``: the region-level ledger transitions
        still account the same bytes; this only records *whose* they are.
        """
        if self.tenant_used is None:
            self.tenant_used = {}
        self.tenant_used[tenant] = self.tenant_used.get(tenant, 0) + delta

    def tenant_usage(self, tenant: str) -> int:
        if self.tenant_used is None:
            return 0
        return self.tenant_used.get(tenant, 0)

    def quota_headroom(self, tenant: str) -> Optional[int]:
        """Bytes the tenant may still use under its quota (None = no cap)."""
        cap = self.quota(tenant)
        if cap is None:
            return None
        return cap - self.tenant_usage(tenant)

    def over_quota(self, tenant: str) -> bool:
        """Whether the tenant's attributed usage exceeds its quota."""
        cap = self.quota(tenant)
        return cap is not None and self.tenant_usage(tenant) > cap

    def reset(self) -> None:
        """Drop all ledgers (cache clear); capacity/policy survive."""
        self.used = 0
        self.reserved = 0
        self.pinned = 0
        if self.tenant_used is not None:
            self.tenant_used.clear()

    def check(self) -> None:
        """Assert the ledger invariants (used by the property tests)."""
        assert self.used >= 0, f"{self.name}: negative used ({self.used})"
        assert self.reserved >= 0, \
            f"{self.name}: negative reserved ({self.reserved})"
        assert self.pinned >= 0, \
            f"{self.name}: negative pinned ({self.pinned})"
        assert self.used + self.reserved + self.free == self.capacity or \
            self.unlimited or self.used + self.reserved > self.capacity, \
            f"{self.name}: ledger does not tile capacity"
        if not self.unlimited:
            assert self.used + self.reserved <= self.capacity, (
                f"{self.name}: overcommitted "
                f"({self.used}+{self.reserved} > {self.capacity})"
            )
        if self.tenant_used is not None:
            total = 0
            for tenant, nbytes in self.tenant_used.items():
                assert nbytes >= 0, (
                    f"{self.name}: negative tenant usage "
                    f"({tenant}: {nbytes})"
                )
                total += nbytes
            assert total <= self.used, (
                f"{self.name}: tenant ledgers exceed used "
                f"({total} > {self.used})"
            )

    def snapshot(self) -> dict:
        """Accounting snapshot for diagnostics and ``obs`` summaries."""
        snap = {
            "region": self.name,
            "capacity": self.capacity,
            "used": self.used,
            "reserved": self.reserved,
            "pinned": self.pinned,
            "free": self.free,
            "peak_used": self.peak_used,
            "unlimited": self.unlimited,
            "policy": getattr(self.policy, "name", None),
        }
        if self.tenant_used is not None:
            snap["tenants"] = {
                tenant: {
                    "used": nbytes,
                    "quota": self.quota(tenant),
                }
                for tenant, nbytes in sorted(self.tenant_used.items())
            }
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryRegion({self.name}, {self.used}+{self.reserved}r"
                f"/{self.capacity}, pinned={self.pinned})")
