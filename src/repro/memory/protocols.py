"""Entry protocols consumed by the arbiter and the eviction policies.

Anything a region manages must be *scoreable*: the four ablation
policies of ``core/policies.py`` read the same metadata fields off
every candidate — lineage-cache entries, buffer-pool blocks, cached
Spark partitions.  GPU free-list pointers use the pointer variant of
the same policies (``score_pointer``, Eq. 2 normalisation).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Evictable(Protocol):
    """A region-managed object the eviction policies can score.

    The fields mirror :class:`~repro.core.entry.CacheEntry`'s policy
    metadata; backend adapters (buffer-pool blocks, cached partitions)
    expose the same names so every region shares one scoring registry.
    """

    size: int
    compute_cost: float
    hits: int
    misses: int
    jobs: int
    last_access: float


@runtime_checkable
class Spillable(Protocol):
    """An evictable whose payload can move to a slower tier and back.

    The arbiter's spill-vs-drop decision (:meth:`MemoryArbiter.should_spill`)
    only needs ``size`` and ``compute_cost``; the actual data movement
    (disk write, ``on_disk`` flip, D2H copy) stays backend physics.
    """

    size: int
    compute_cost: float
