"""Experiment runner: executes (workload x system x scale) grids.

One ``run_*`` function per paper table/figure; each returns the raw
results plus a formatted table whose rows/series match what the paper
reports.  The benchmark suite under ``benchmarks/`` calls these.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.common.config import GB, MB, EvictionPolicyName, MemphisConfig
from repro.core.session import Session
from repro.harness.report import (
    check_metrics_agree,
    format_table,
    results_table,
    speedup_series,
)
from repro.workloads.base import WorkloadResult
from repro.workloads.clean import run_clean
from repro.workloads.en2de import run_en2de
from repro.workloads.hband import run_hband
from repro.workloads.hcv import run_hcv
from repro.workloads.hdrop import run_hdrop
from repro.workloads.micro import (
    run_fig2c,
    run_fig2d,
    run_fig12b,
    run_reuse_overhead,
)
from repro.workloads.pnmf_wl import run_pnmf
from repro.workloads.tlvis import run_tlvis


class ExperimentResult:
    """Raw grid results + formatted report for one experiment."""

    def __init__(self, experiment: str, grid: dict, table: str) -> None:
        self.experiment = experiment
        self.grid = grid
        self.table = table

    def __str__(self) -> str:
        return self.table


def _grid(runner: Callable[..., WorkloadResult], systems: Sequence[str],
          xs: Sequence, **kw) -> dict:
    out: dict = {}
    for x in xs:
        out[x] = {system: runner(system, x, **kw) for system in systems}
    return out


# ------------------------------------------------------------ experiments

def run_experiment_fig2c() -> ExperimentResult:
    """E1 (Fig. 2(c)): eager vs lazy RDD caching."""
    settings = ["NoCache", "Eager", "MEMPHIS"]
    results = {s: run_fig2c(s) for s in settings}
    rows = [
        [s, results[s].elapsed * 1000,
         results[s].counter("spark/jobs"),
         results[s].counter("spark/rdds_reused")]
        for s in settings
    ]
    table = format_table(
        ["setting", "time [ms]", "jobs", "rdds_reused"], rows,
        title="Fig 2(c): eager vs lazy RDD caching (12K-op analog)",
    )
    return ExperimentResult("fig2c", {0: results}, table)


def run_experiment_fig2d() -> ExperimentResult:
    """E2 (Fig. 2(d)): GPU alloc/copy/compute breakdown."""
    out = run_fig2d(epochs=5, batches=100)
    rows = [
        ["compute", out["compute_s"] * 1000, 1.0],
        ["alloc+free", out["alloc_free_s"] * 1000,
         out["alloc_free_over_compute"]],
        ["copy", out["copy_s"] * 1000, out["copy_over_compute"]],
    ]
    table = format_table(
        ["component", "time [ms]", "x over compute"], rows,
        title="Fig 2(d): forced per-kernel allocate/copy/free overhead",
    )
    return ExperimentResult("fig2d", {0: out}, table)


def run_experiment_fig11a(iterations: int = 100) -> ExperimentResult:
    """E3 (Fig. 11(a)): tracing/probing overhead vs input size."""
    sizes = [800, 8 * 1024, 80 * 1024, 800 * 1024, 8 * 1024 * 1024]
    rows = []
    grid: dict = {}
    for size in sizes:
        cells = {
            "Base": run_reuse_overhead("Base", size, iterations),
            "Trace": run_reuse_overhead("Trace", size, iterations),
            "Probe": run_reuse_overhead("Probe", size, iterations),
            "Reuse20": run_reuse_overhead("Reuse", size, iterations, 0.2),
            "Reuse40": run_reuse_overhead("Reuse", size, iterations, 0.4),
            "Reuse80": run_reuse_overhead("Reuse", size, iterations, 0.8),
        }
        grid[size] = cells
        base = cells["Base"].elapsed
        rows.append([
            _size_label(size),
            base * 1000,
            cells["Trace"].elapsed / base,
            cells["Probe"].elapsed / base,
            base / cells["Reuse20"].elapsed,
            base / cells["Reuse40"].elapsed,
            base / cells["Reuse80"].elapsed,
        ])
    table = format_table(
        ["input", "Base [ms]", "Trace x", "Probe x",
         "20% speedup", "40% speedup", "80% speedup"],
        rows, title="Fig 11(a): reuse overhead vs input size",
    )
    return ExperimentResult("fig11a", grid, table)


def run_experiment_fig11b() -> ExperimentResult:
    """E4 (Fig. 11(b)): overhead vs instruction count + 40%INF."""
    size = 8 * 1024 * 1024
    counts = [100, 200, 300, 400, 500]
    rows = []
    grid: dict = {}
    for iters in counts:
        cells = {
            "Base": run_reuse_overhead("Base", size, iters),
            "Trace": run_reuse_overhead("Trace", size, iters),
            "Probe": run_reuse_overhead("Probe", size, iters),
            "Reuse20": run_reuse_overhead("Reuse", size, iters, 0.2),
            "Reuse40": run_reuse_overhead("Reuse", size, iters, 0.4),
            "Reuse40INF": run_reuse_overhead(
                "Reuse", size, iters, 0.4, unlimited=True
            ),
        }
        grid[iters] = cells
        base = cells["Base"].elapsed
        rows.append([
            iters * 13,  # ~13 instructions per iteration
            base * 1000,
            cells["Probe"].elapsed / base,
            base / cells["Reuse20"].elapsed,
            base / cells["Reuse40"].elapsed,
            base / cells["Reuse40INF"].elapsed,
        ])
    table = format_table(
        ["#insts", "Base [ms]", "Probe x", "20% speedup",
         "40% speedup", "40%INF speedup"],
        rows, title="Fig 11(b): overhead vs instruction count",
    )
    return ExperimentResult("fig11b", grid, table)


def run_experiment_fig12a() -> ExperimentResult:
    """E5 (Fig. 12(a)): driver cache sizes vs reuse potential."""
    cache_sizes = {
        "900MB": 900 * MB // 1024,
        "5GB": 5 * GB // 1024,
        "30GB": 30 * GB // 1024,
    }
    inputs_gb = [2, 4, 6, 8, 10]
    rows = []
    grid: dict = {}
    for gb in inputs_gb:
        size = gb * GB // 1024
        # inputs and cache sizes are scaled by the simulation factor, so
        # fixed overheads scale with them (see scale_overheads)
        base = run_reuse_overhead("Base", size, iterations=100,
                                  overhead_scale=1.0 / 1024.0)
        cells = {"Base": base}
        row: list = [f"{gb}GB", base.elapsed * 1000]
        for label, cache_bytes in cache_sizes.items():
            result = run_reuse_overhead(
                "Reuse", size, iterations=100, reuse_fraction=0.4,
                cache_bytes=cache_bytes, overhead_scale=1.0 / 1024.0,
            )
            cells[label] = result
            row.append(base.elapsed / result.elapsed)
        grid[gb] = cells
        rows.append(row)
    table = format_table(
        ["input", "Base [ms]", "900MB speedup", "5GB speedup",
         "30GB speedup"],
        rows, title="Fig 12(a): cache size vs speedup (40% reuse)",
    )
    return ExperimentResult("fig12a", grid, table)


def run_experiment_fig12b() -> ExperimentResult:
    """E6 (Fig. 12(b)): GPU cache eviction (ensemble CNN scoring)."""
    batch_sizes = [2, 4, 8, 16]
    rows = []
    grid: dict = {}
    for bs in batch_sizes:
        base = run_fig12b("Base", bs)
        cells = {"Base": base}
        row: list = [bs, base.elapsed * 1000]
        for frac in (0.2, 0.4, 0.8):
            result = run_fig12b("MPH", bs, reuse_fraction=frac)
            cells[f"MPH{int(frac * 100)}"] = result
            row.append(base.elapsed / result.elapsed)
        mph = cells["MPH80"]
        row.extend([
            mph.counter("gpu/pointers_recycled"),
            mph.counter("gpu/pointers_reused"),
        ])
        grid[bs] = cells
        rows.append(row)
    table = format_table(
        ["batch", "Base [ms]", "20% speedup", "40% speedup",
         "80% speedup", "recycled", "reused"],
        rows, title="Fig 12(b): GPU eviction under ensemble CNN scoring",
    )
    return ExperimentResult("fig12b", grid, table)


def run_experiment_hcv(sizes=(5, 25, 50, 100)) -> ExperimentResult:
    """E7 (Fig. 13(a)): HCV across input sizes and systems."""
    systems = ["Base", "Base-A", "LIMA", "HELIX", "MPH-NA", "MPH"]
    grid = _grid(run_hcv, systems, sizes)
    for by_system in grid.values():
        assert check_metrics_agree(by_system, rel_tol=1e-6)
    table = results_table(
        {f"{gb}GB": v for gb, v in grid.items()}, "input",
        "Fig 13(a): HCV grid search / cross validation",
        extra_counters=("spark/rdds_reused", "spark/actions_reused"),
    )
    return ExperimentResult("hcv", grid, table)


def run_experiment_pnmf(iteration_counts=(5, 15, 25, 35, 45)) -> ExperimentResult:
    """E8 (Fig. 13(b)): PNMF iteration scaling."""
    systems = ["Base", "LIMA", "MPH"]
    grid = _grid(run_pnmf, systems, iteration_counts)
    table = results_table(
        {f"{it} iters": v for it, v in grid.items()}, "#iterations",
        "Fig 13(b): PNMF (checkpoint placement)",
        extra_counters=("compiler/checkpoints_placed",),
    )
    return ExperimentResult("pnmf", grid, table)


def run_experiment_hband(sizes=(5, 20)) -> ExperimentResult:
    """E9 (Fig. 13(c)): HBAND model search."""
    systems = ["Base", "LIMA", "HELIX", "MPH"]
    grid = _grid(run_hband, systems, sizes)
    table = results_table(
        {f"{gb}GB": v for gb, v in grid.items()}, "input",
        "Fig 13(c): HBAND successive halving + ensemble",
        extra_counters=("spark/rdds_reused", "cache/function_hits"),
    )
    return ExperimentResult("hband", grid, table)


def run_experiment_clean(scale_factors=(12, 40, 80, 120)) -> ExperimentResult:
    """E10 (Fig. 14(a)): CLEAN pipeline enumeration."""
    systems = ["Base", "Base-P", "LIMA", "MPH"]
    grid = _grid(run_clean, systems, scale_factors)
    table = results_table(
        {f"x{sf}": v for sf, v in grid.items()}, "scale",
        "Fig 14(a): CLEAN pipeline enumeration",
        extra_counters=("cache/hits", "cache/evictions"),
    )
    return ExperimentResult("clean", grid, table)


def run_experiment_hdrop(epochs: int = 3) -> ExperimentResult:
    """E11 (Fig. 14(b)): HDROP dropout-rate tuning."""
    systems = ["Base-C", "Base-G", "LIMA", "CoorDL", "MPH"]
    results = {s: run_hdrop(s, epochs=epochs) for s in systems}
    rows = [
        [s, results[s].elapsed * 1000,
         results[s].counter("gpu/pointers_recycled"),
         results[s].counter("gpu/pointers_reused"),
         results[s].counter("cache/hits")]
        for s in systems
    ]
    table = format_table(
        ["system", "time [ms]", "recycled", "gpu_reused", "hits"],
        rows, title="Fig 14(b): HDROP dropout-rate tuning",
    )
    return ExperimentResult("hdrop", {0: results}, table)


def run_experiment_en2de() -> ExperimentResult:
    """E12 (Fig. 14(c)): EN2DE translation scoring."""
    systems = ["Base-G", "MPH-F", "Clipper", "PyTorch", "MPH"]
    results = {s: run_en2de(s) for s in systems}
    assert check_metrics_agree(results, rel_tol=1e-6)
    rows = [
        [s, results[s].elapsed * 1000,
         results[s].counter("gpu/pointers_reused"),
         results[s].counter("gpu/pointers_recycled"),
         results[s].counter("cache/function_hits")]
        for s in systems
    ]
    table = format_table(
        ["system", "time [ms]", "ptr_reused", "recycled", "pred_reused"],
        rows, title="Fig 14(c): EN2DE language translation scoring",
    )
    return ExperimentResult("en2de", {0: results}, table)


def run_experiment_tlvis(device_memory: int | None = None) -> ExperimentResult:
    """E13 (Fig. 14(d)): TLVIS transfer learning."""
    systems = ["Base-G", "VISTA", "PyTorch", "PyTorch-Clr", "MPH"]
    results = {
        s: run_tlvis(s, device_memory=device_memory) for s in systems
    }
    rows = [
        [s,
         "OOM" if results[s].failed else results[s].elapsed * 1000,
         results[s].counter("gpu/pointers_reused"),
         results[s].counter("gpu/pointers_recycled"),
         results[s].counter("compiler/evict_instructions")]
        for s in systems
    ]
    table = format_table(
        ["system", "time [ms]", "reused", "recycled", "evict_instrs"],
        rows, title="Fig 14(d): TLVIS transfer-learning feature extraction",
    )
    return ExperimentResult("tlvis", {0: results}, table)


def run_experiment_table2() -> ExperimentResult:
    """E14 (Table 2): measured backend properties."""
    cfg = MemphisConfig()
    sess = Session(cfg)
    rows = [
        ["Spark", "Lazy", "Distrib.",
         f"{cfg.spark.bandwidth_bytes_per_s / GB:.1f} GB/s", "Yes",
         "Large data"],
        ["GPU", "Async.", "Small",
         f"{cfg.gpu.h2d_bandwidth_bytes_per_s / GB:.1f} GB/s", "No",
         "Mini-batch, DNN"],
        ["CPU", "Eager", "Varying", "-", "No", "All"],
    ]
    table = format_table(
        ["backend", "exec", "memory", "bandwidth", "cache-API", "workload"],
        rows, title="Table 2: backend properties (as configured)",
    )
    return ExperimentResult("table2", {0: rows}, table)


def run_ablation_policies(scale_factor: int = 12) -> ExperimentResult:
    """A1: eviction policy and delay factor ablation on CLEAN."""
    rows = []
    grid: dict = {}
    for policy in EvictionPolicyName:
        cfg_result = _run_clean_with(policy=policy, scale=scale_factor)
        grid[policy.value] = cfg_result
        rows.append([
            f"policy={policy.value}",
            cfg_result.elapsed * 1000,
            cfg_result.counter("cache/hits"),
            cfg_result.counter("cache/evictions"),
        ])
    for delay in (1, 2, 4):
        cfg_result = _run_clean_with(delay=delay, scale=scale_factor)
        grid[f"delay{delay}"] = cfg_result
        rows.append([
            f"delay={delay}",
            cfg_result.elapsed * 1000,
            cfg_result.counter("cache/hits"),
            cfg_result.counter("cache/evictions"),
        ])
    table = format_table(
        ["configuration", "time [ms]", "hits", "evictions"],
        rows, title="Ablation: eviction policies and delay factors (CLEAN)",
    )
    return ExperimentResult("ablation_policies", grid, table)


def _run_clean_with(policy: EvictionPolicyName | None = None,
                    delay: int | None = None,
                    scale: int = 12) -> WorkloadResult:
    from repro.core.policies import make_policy
    from repro.workloads import clean as clean_mod

    # run MPH with a patched cache configuration
    result_holder: dict = {}

    def patched_make_session(system, gpu=False, spark=True):
        from repro.workloads.base import SYSTEMS
        cfg = SYSTEMS[system]()
        cfg.gpu_enabled = gpu
        cfg.spark_enabled = spark
        if policy is not None:
            cfg.cache.policy = policy
        if delay is not None:
            cfg.cache.delay_factor = delay
            cfg.enable_auto_tuning = False
        return Session(cfg)

    original = clean_mod.make_session
    clean_mod.make_session = patched_make_session
    try:
        return run_clean("MPH", scale)
    finally:
        clean_mod.make_session = original


def run_ablation_ordering(paper_gb: float = 50.0) -> ExperimentResult:
    """A2: maxParallelize vs depth-first linearization on HCV."""
    results = {}
    for label, enabled in (("depth-first", False), ("maxParallelize", True)):
        from repro.workloads import hcv as hcv_mod
        from repro.workloads.base import SYSTEMS

        def patched_make_session(system, gpu=False, spark=True,
                                 _enabled=enabled):
            cfg = SYSTEMS[system]()
            cfg.gpu_enabled = gpu
            cfg.spark_enabled = spark
            cfg.enable_max_parallelize = _enabled
            return Session(cfg)

        original = hcv_mod.make_session
        hcv_mod.make_session = patched_make_session
        try:
            results[label] = run_hcv("MPH", paper_gb)
        finally:
            hcv_mod.make_session = original
    rows = [
        [label, r.elapsed * 1000, r.counter("async/prefetch_issued")]
        for label, r in results.items()
    ]
    table = format_table(
        ["linearization", "time [ms]", "prefetches"],
        rows, title="Ablation: operator ordering (HCV, 50GB)",
    )
    return ExperimentResult("ablation_ordering", results, table)


def _size_label(size: int) -> str:
    if size >= 1024 * 1024:
        return f"{size // (1024 * 1024)}MB"
    if size >= 1024:
        return f"{size // 1024}KB"
    return f"{size}B"
