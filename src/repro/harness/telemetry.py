"""Benchmark telemetry: schema-validated machine-readable bench reports.

The harness experiments print human tables; CI and regression tooling
need numbers.  ``scripts/bench_report.py`` runs experiments under an
ambient :class:`~repro.obs.metrics.MetricsCollector` and serializes one
record per experiment — simulated time, wall-clock, key stats counters,
and per-series metric digests — into a ``BENCH_<n>.json`` document
validated against :data:`BENCH_SCHEMA`.

The validator is hand-rolled (like ``repro.obs.schema``) so the
repository needs no ``jsonschema`` dependency.
"""

from __future__ import annotations

from typing import Optional

from repro.common.stats import (
    CACHE_HITS,
    GPU_MALLOCS,
    GPU_RECYCLED,
    INSTRUCTIONS_EXECUTED,
    LINEAGE_PROBES,
    SPARK_JOBS,
)
from repro.workloads.base import WorkloadResult

#: the bench-report format version (bump on breaking record changes).
BENCH_FORMAT = 1

#: counters every experiment record carries (0 when never incremented).
KEY_COUNTERS = (
    LINEAGE_PROBES,
    CACHE_HITS,
    SPARK_JOBS,
    GPU_MALLOCS,
    GPU_RECYCLED,
    INSTRUCTIONS_EXECUTED,
)

#: JSON-Schema (draft-07 subset) describing a BENCH_<n>.json document.
BENCH_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.harness bench report",
    "type": "object",
    "required": ["format", "issue", "experiments"],
    "properties": {
        "format": {"const": BENCH_FORMAT},
        "issue": {"type": "integer", "minimum": 1},
        "experiments": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["name", "wall_s", "sim_time_s", "counters",
                             "metric_series"],
                "properties": {
                    "name": {"type": "string", "minLength": 1},
                    "wall_s": {"type": "number", "minimum": 0},
                    "sim_time_s": {"type": "number", "minimum": 0},
                    "workloads": {"type": "integer", "minimum": 0},
                    "counters": {
                        "type": "object",
                        "additionalProperties": {"type": "integer"},
                    },
                    "metric_series": {
                        "type": "object",
                        "additionalProperties": {
                            "type": "object",
                            "required": ["n", "min", "max", "mean", "last"],
                        },
                    },
                },
            },
        },
    },
}


def _workload_results(node) -> list[WorkloadResult]:
    """Recursively collect WorkloadResult leaves of an experiment grid."""
    if isinstance(node, WorkloadResult):
        return [node]
    if isinstance(node, dict):
        out: list[WorkloadResult] = []
        for value in node.values():
            out.extend(_workload_results(value))
        return out
    return []


def experiment_record(name: str, result, wall_s: float,
                      metrics_collector=None) -> dict:
    """One bench record for an :class:`ExperimentResult`.

    ``sim_time_s`` sums the simulated elapsed time of every workload
    cell of the grid; ``counters`` sums their stats counters (restricted
    to :data:`KEY_COUNTERS`); ``metric_series`` digests come from the
    run's ambient metrics collector (empty when metering was off).
    """
    workloads = _workload_results(result.grid)
    sim_time = sum(w.elapsed for w in workloads)
    counters = {key: 0 for key in KEY_COUNTERS}
    for w in workloads:
        for key in KEY_COUNTERS:
            counters[key] += int(w.counters.get(key, 0))
    series: dict[str, dict] = {}
    if metrics_collector is not None:
        series = metrics_collector.merged_digests()
    return {
        "name": name,
        "wall_s": float(wall_s),
        "sim_time_s": float(sim_time),
        "workloads": len(workloads),
        "counters": counters,
        "metric_series": series,
    }


def build_bench_report(records: list[dict], issue: int) -> dict:
    """Assemble the top-level BENCH document from experiment records."""
    return {
        "format": BENCH_FORMAT,
        "issue": issue,
        "experiments": records,
    }


def validate_bench_report(doc: object) -> list[str]:
    """Validate ``doc`` against :data:`BENCH_SCHEMA` semantics.

    Returns human-readable problems; empty means the document is a
    well-formed bench report as ``scripts/bench_report.py`` emits it.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top-level document is not a JSON object"]
    if doc.get("format") != BENCH_FORMAT:
        problems.append(f"bad 'format' {doc.get('format')!r} "
                        f"(expected {BENCH_FORMAT})")
    issue = doc.get("issue")
    if not isinstance(issue, int) or issue < 1:
        problems.append(f"bad 'issue' {issue!r}")
    experiments = doc.get("experiments")
    if not isinstance(experiments, list) or not experiments:
        return problems + ["missing/empty 'experiments' array"]
    for i, rec in enumerate(experiments):
        prefix = f"experiments[{i}]"
        if not isinstance(rec, dict):
            problems.append(f"{prefix}: not an object")
            continue
        name = rec.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{prefix}: missing/empty 'name'")
        for key in ("wall_s", "sim_time_s"):
            value = rec.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{prefix}: bad {key!r} {value!r}")
        counters = rec.get("counters")
        if not isinstance(counters, dict):
            problems.append(f"{prefix}: missing 'counters'")
        else:
            for cname, cvalue in counters.items():
                if not isinstance(cvalue, int):
                    problems.append(
                        f"{prefix}: counter {cname!r} not an integer"
                    )
        series = rec.get("metric_series")
        if not isinstance(series, dict):
            problems.append(f"{prefix}: missing 'metric_series'")
        else:
            for sname, digest in series.items():
                if not isinstance(digest, dict) or not (
                        {"n", "min", "max", "mean", "last"} <= set(digest)):
                    problems.append(
                        f"{prefix}: bad digest for series {sname!r}"
                    )
        if len(problems) > 50:
            problems.append("... (truncated)")
            break
    return problems


def assert_valid_bench_report(doc: object,
                              context: Optional[str] = None) -> None:
    """Raise ``ValueError`` with all problems if ``doc`` is invalid."""
    problems = validate_bench_report(doc)
    if problems:
        where = f" ({context})" if context else ""
        raise ValueError(
            f"invalid bench report{where}:\n  " + "\n  ".join(problems)
        )


# -------------------------------------------------- wall-clock track (issue 6)

#: format tag of the wall-clock benchmark document.
WALLCLOCK_FORMAT = "BENCH_wallclock"

#: wall-clock document version (bump on breaking record changes).
WALLCLOCK_VERSION = 1

#: fields every wall-clock workload record carries.
WALLCLOCK_RECORD_KEYS = (
    "name", "repeats", "iters_per_repeat", "items",
    "items_per_s", "p50_ms", "p99_ms",
)

#: JSON-Schema (draft-07 subset) describing a BENCH_wallclock.json document.
WALLCLOCK_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.harness wall-clock bench report",
    "type": "object",
    "required": ["format", "version", "issue", "workloads"],
    "properties": {
        "format": {"const": WALLCLOCK_FORMAT},
        "version": {"const": WALLCLOCK_VERSION},
        "issue": {"type": "integer", "minimum": 1},
        "workloads": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": list(WALLCLOCK_RECORD_KEYS),
                "properties": {
                    "name": {"type": "string", "minLength": 1},
                    "repeats": {"type": "integer", "minimum": 1},
                    "iters_per_repeat": {"type": "integer", "minimum": 1},
                    "items": {"type": "integer", "minimum": 0},
                    "items_per_s": {"type": "number", "minimum": 0},
                    "p50_ms": {"type": "number", "minimum": 0},
                    "p99_ms": {"type": "number", "minimum": 0},
                },
            },
        },
    },
}


def build_wallclock_report(records: list[dict], issue: int) -> dict:
    """Assemble the top-level BENCH_wallclock document."""
    return {
        "format": WALLCLOCK_FORMAT,
        "version": WALLCLOCK_VERSION,
        "issue": issue,
        "workloads": records,
    }


def validate_wallclock_report(doc: object) -> list[str]:
    """Validate ``doc`` against :data:`WALLCLOCK_SCHEMA` semantics.

    Hand-rolled like :func:`validate_bench_report` (no ``jsonschema``
    dependency); returns human-readable problems, empty when valid.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top-level document is not a JSON object"]
    if doc.get("format") != WALLCLOCK_FORMAT:
        problems.append(f"bad 'format' {doc.get('format')!r} "
                        f"(expected {WALLCLOCK_FORMAT!r})")
    if doc.get("version") != WALLCLOCK_VERSION:
        problems.append(f"bad 'version' {doc.get('version')!r} "
                        f"(expected {WALLCLOCK_VERSION})")
    issue = doc.get("issue")
    if not isinstance(issue, int) or issue < 1:
        problems.append(f"bad 'issue' {issue!r}")
    workloads = doc.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        return problems + ["missing/empty 'workloads' array"]
    for i, rec in enumerate(workloads):
        prefix = f"workloads[{i}]"
        if not isinstance(rec, dict):
            problems.append(f"{prefix}: not an object")
            continue
        name = rec.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{prefix}: missing/empty 'name'")
        for key in ("repeats", "iters_per_repeat", "items"):
            value = rec.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                problems.append(f"{prefix}: bad {key!r} {value!r}")
        for key in ("items_per_s", "p50_ms", "p99_ms"):
            value = rec.get(key)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value < 0:
                problems.append(f"{prefix}: bad {key!r} {value!r}")
    return problems


def assert_valid_wallclock_report(doc: object,
                                  context: Optional[str] = None) -> None:
    """Raise ``ValueError`` with all problems if ``doc`` is invalid."""
    problems = validate_wallclock_report(doc)
    if problems:
        where = f" ({context})" if context else ""
        raise ValueError(
            f"invalid wall-clock report{where}:\n  " + "\n  ".join(problems)
        )


def compare_wallclock_reports(current: dict, baseline: dict,
                              tolerance: float = 0.25) -> list[str]:
    """Throughput regressions of ``current`` against ``baseline``.

    A workload regresses when its ``items_per_s`` falls more than
    ``tolerance`` (fraction) below the baseline's.  Workloads present
    only on one side are reported too — a silently dropped workload
    must fail the gate, a new one must be baselined deliberately.
    Latency percentiles are informational only: they are far noisier
    than best-batch throughput on shared CI machines.
    """
    problems: list[str] = []
    base_by_name = {r["name"]: r for r in baseline.get("workloads", [])}
    cur_by_name = {r["name"]: r for r in current.get("workloads", [])}
    for name, base in base_by_name.items():
        cur = cur_by_name.get(name)
        if cur is None:
            problems.append(f"workload {name!r} missing from current report")
            continue
        floor = base["items_per_s"] * (1.0 - tolerance)
        if cur["items_per_s"] < floor:
            problems.append(
                f"workload {name!r} regressed: {cur['items_per_s']:.0f} "
                f"items/s < {floor:.0f} (baseline "
                f"{base['items_per_s']:.0f} - {tolerance:.0%})"
            )
    for name in cur_by_name:
        if name not in base_by_name:
            problems.append(f"workload {name!r} not in baseline "
                            f"(re-baseline to add it)")
    return problems


# ------------------------------------------------- server SLO track (issue 10)

#: format tag of the server observability JSONL stream.
SERVER_FORMAT = "SERVER"

#: server stream version (bump on breaking record changes).
SERVER_VERSION = 1

#: record kinds a server JSONL stream may contain, in emission order.
SERVER_RECORD_KINDS = ("header", "request", "tenant_slo", "attribution",
                      "counters")

#: fields every tenant_slo record carries (the per-tenant SLO row).
SERVER_SLO_KEYS = (
    "tenant", "requests", "completed", "failed", "retries",
    "latency_p50_s", "latency_p99_s", "probes", "hits", "hit_rate",
    "cross_session_hits", "dedup_bytes_consumed", "dedup_bytes_produced",
    "backpressure_events", "admission_refusals", "quota_refusals",
    "cp_used", "cp_quota", "quota_headroom",
)

#: JSON-Schema (draft-07 subset) describing one line of the server
#: JSONL stream (``scripts/server_report.py`` /
#: ``python -m repro.harness --server N --server-report OUT.jsonl``).
SERVER_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.server observability record",
    "type": "object",
    "required": ["kind"],
    "properties": {
        "kind": {"enum": list(SERVER_RECORD_KINDS)},
    },
    "oneOf": [
        {
            "properties": {
                "kind": {"const": "header"},
                "format": {"const": SERVER_FORMAT},
                "version": {"const": SERVER_VERSION},
                "sessions": {"type": "integer", "minimum": 1},
                "seed": {"type": "integer"},
                "ok": {"type": "boolean"},
                "tenants": {"type": "array",
                            "items": {"type": "string"},
                            "minItems": 1},
                "flight_dumps": {"type": "integer", "minimum": 0},
            },
            "required": ["format", "version", "sessions", "seed", "ok",
                         "tenants", "flight_dumps"],
        },
        {
            "properties": {
                "kind": {"const": "request"},
                "name": {"type": "string", "minLength": 1},
                "tenant": {"type": "string", "minLength": 1},
                "request_id": {"type": "string", "minLength": 1},
                "ok": {"type": "boolean"},
                "steps": {"type": "integer", "minimum": 1},
                "retries": {"type": "integer", "minimum": 0},
                "sim_latency_s": {"type": "number", "minimum": 0},
            },
            "required": ["name", "tenant", "request_id", "ok", "steps",
                         "retries", "sim_latency_s"],
        },
        {
            "properties": {"kind": {"const": "tenant_slo"}},
            "required": list(SERVER_SLO_KEYS),
        },
        {
            "properties": {
                "kind": {"const": "attribution"},
                "producer": {"type": "string", "minLength": 1},
                "consumer": {"type": "string", "minLength": 1},
                "hits": {"type": "integer", "minimum": 1},
                "bytes": {"type": "integer", "minimum": 0},
                "cost_avoided": {"type": "number", "minimum": 0},
            },
            "required": ["producer", "consumer", "hits", "bytes",
                         "cost_avoided"],
        },
        {
            "properties": {
                "kind": {"const": "counters"},
                "counters": {
                    "type": "object",
                    "additionalProperties": {"type": "integer"},
                },
            },
            "required": ["counters"],
        },
    ],
}


def server_report_records(report, sessions: int, seed: int) -> list[dict]:
    """Flatten a :class:`~repro.server.scheduler.ServerReport` to records.

    One ``header`` line, one ``request`` line per request (submit
    order), one ``tenant_slo`` line per tenant (sorted), one
    ``attribution`` line per producer→consumer cell (sorted), and one
    trailing ``counters`` line with the merged counters — a stable
    order, so the same seed yields a byte-identical JSONL file.
    """
    records: list[dict] = [{
        "kind": "header",
        "format": SERVER_FORMAT,
        "version": SERVER_VERSION,
        "sessions": sessions,
        "seed": seed,
        "ok": report.ok,
        "tenants": sorted(report.slo),
        "flight_dumps": len(report.flight_dumps),
    }]
    for result in report.results:
        records.append({"kind": "request", **result.as_record()})
    for tenant in sorted(report.slo):
        records.append({"kind": "tenant_slo", **report.slo[tenant]})
    for cell in report.attribution:
        records.append({"kind": "attribution", **cell})
    records.append({
        "kind": "counters",
        "counters": {name: int(count)
                     for name, count in sorted(report.merged.counters().items())},
    })
    return records


def validate_server_records(records: object) -> list[str]:
    """Validate a server JSONL stream against :data:`SERVER_SCHEMA`.

    Hand-rolled like :func:`validate_bench_report`.  Beyond per-record
    shape it checks stream structure: the first record must be the only
    ``header``, and at least one ``tenant_slo`` and one ``counters``
    record must be present.
    """
    problems: list[str] = []
    if not isinstance(records, list) or not records:
        return ["stream is not a non-empty list of records"]
    kinds: list[str] = []
    for i, rec in enumerate(records):
        prefix = f"records[{i}]"
        if not isinstance(rec, dict):
            problems.append(f"{prefix}: not an object")
            continue
        kind = rec.get("kind")
        kinds.append(kind)
        if kind == "header":
            if rec.get("format") != SERVER_FORMAT:
                problems.append(f"{prefix}: bad 'format' "
                                f"{rec.get('format')!r}")
            if rec.get("version") != SERVER_VERSION:
                problems.append(f"{prefix}: bad 'version' "
                                f"{rec.get('version')!r}")
            sessions = rec.get("sessions")
            if not isinstance(sessions, int) or isinstance(sessions, bool) \
                    or sessions < 1:
                problems.append(f"{prefix}: bad 'sessions' {sessions!r}")
            if not isinstance(rec.get("seed"), int):
                problems.append(f"{prefix}: bad 'seed' {rec.get('seed')!r}")
            if not isinstance(rec.get("ok"), bool):
                problems.append(f"{prefix}: bad 'ok' {rec.get('ok')!r}")
            tenants = rec.get("tenants")
            if not isinstance(tenants, list) or not tenants or not all(
                    isinstance(t, str) and t for t in tenants):
                problems.append(f"{prefix}: bad 'tenants' {tenants!r}")
            dumps = rec.get("flight_dumps")
            if not isinstance(dumps, int) or isinstance(dumps, bool) \
                    or dumps < 0:
                problems.append(f"{prefix}: bad 'flight_dumps' {dumps!r}")
        elif kind == "request":
            for key in ("name", "tenant", "request_id"):
                value = rec.get(key)
                if not isinstance(value, str) or not value:
                    problems.append(f"{prefix}: bad {key!r} {value!r}")
            if not isinstance(rec.get("ok"), bool):
                problems.append(f"{prefix}: bad 'ok' {rec.get('ok')!r}")
            for key in ("steps", "retries"):
                value = rec.get(key)
                if not isinstance(value, int) or isinstance(value, bool) \
                        or value < 0:
                    problems.append(f"{prefix}: bad {key!r} {value!r}")
            latency = rec.get("sim_latency_s")
            if not isinstance(latency, (int, float)) \
                    or isinstance(latency, bool) or latency < 0:
                problems.append(f"{prefix}: bad 'sim_latency_s' {latency!r}")
        elif kind == "tenant_slo":
            missing = [k for k in SERVER_SLO_KEYS if k not in rec]
            if missing:
                problems.append(f"{prefix}: missing SLO fields {missing}")
                continue
            if not isinstance(rec["tenant"], str) or not rec["tenant"]:
                problems.append(f"{prefix}: bad 'tenant' {rec['tenant']!r}")
            for key in ("latency_p50_s", "latency_p99_s", "hit_rate"):
                value = rec.get(key)
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool) or value < 0:
                    problems.append(f"{prefix}: bad {key!r} {value!r}")
            if isinstance(rec.get("hit_rate"), (int, float)) \
                    and rec["hit_rate"] > 1:
                problems.append(f"{prefix}: 'hit_rate' {rec['hit_rate']!r} "
                                f"> 1")
        elif kind == "attribution":
            for key in ("producer", "consumer"):
                value = rec.get(key)
                if not isinstance(value, str) or not value:
                    problems.append(f"{prefix}: bad {key!r} {value!r}")
            hits = rec.get("hits")
            if not isinstance(hits, int) or isinstance(hits, bool) \
                    or hits < 1:
                problems.append(f"{prefix}: bad 'hits' {hits!r}")
            for key in ("bytes", "cost_avoided"):
                value = rec.get(key)
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool) or value < 0:
                    problems.append(f"{prefix}: bad {key!r} {value!r}")
        elif kind == "counters":
            counters = rec.get("counters")
            if not isinstance(counters, dict):
                problems.append(f"{prefix}: missing 'counters'")
            else:
                for cname, cvalue in counters.items():
                    if not isinstance(cvalue, int) \
                            or isinstance(cvalue, bool):
                        problems.append(
                            f"{prefix}: counter {cname!r} not an integer"
                        )
        else:
            problems.append(f"{prefix}: unknown kind {kind!r}")
        if len(problems) > 50:
            problems.append("... (truncated)")
            break
    if kinds[:1] != ["header"] or kinds.count("header") != 1:
        problems.append("stream must start with exactly one 'header' record")
    if "tenant_slo" not in kinds:
        problems.append("stream has no 'tenant_slo' record")
    if "counters" not in kinds:
        problems.append("stream has no 'counters' record")
    return problems


def assert_valid_server_records(records: object,
                                context: Optional[str] = None) -> None:
    """Raise ``ValueError`` with all problems if the stream is invalid."""
    problems = validate_server_records(records)
    if problems:
        where = f" ({context})" if context else ""
        raise ValueError(
            f"invalid server report{where}:\n  " + "\n  ".join(problems)
        )


def write_server_jsonl(path: str, records: list[dict]) -> None:
    """Write records one-per-line with sorted keys (byte-reproducible)."""
    import json

    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


def read_server_jsonl(path: str) -> list[dict]:
    """Load a server JSONL stream back into a list of records."""
    import json

    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]
