"""Wall-clock benchmark track: real dispatch throughput, not simulated time.

Every other benchmark in this repository reports *simulated* seconds
from :class:`~repro.common.simclock.SimClock` — deterministic and
machine-independent, but blind to the real cost of the interpreter loop
itself.  This track times the hot path with ``time.perf_counter`` on
small steady-state workloads, producing the numbers that the
interpreter-dispatch optimizations (``repro.runtime.dispatch``,
``repro.backends.cpu.vectorized``, the lineage interner, the
single-traversal compile pipeline) actually change.

Methodology (see docs/PERFORMANCE.md):

* every workload runs **steady-state**: one session, a warmup phase,
  then ``repeats`` measured batches of ``iters`` training iterations —
  the regime where lineage interning and cache reuse engage;
* *items* are dispatched instructions
  (``runtime/instructions_executed + runtime/instructions_skipped``),
  read from the stats counters, so throughput is comparable across
  dispatch paths that execute the same plans;
* ``items_per_s`` is the **best** batch (max across repeats): shared
  machines suffer burst contention, and the fastest batch is the
  estimator that converges to the uncontended machine;
* latency percentiles (p50/p99) come from per-iteration
  ``perf_counter`` samples pooled across all batches.

Results feed the ``BENCH_wallclock`` document
(:func:`repro.harness.telemetry.build_wallclock_report`) emitted by
``scripts/bench_report.py --wallclock`` and gated in CI against the
checked-in baseline (``benchmarks/baselines/wallclock_baseline.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.common.config import MemphisConfig, ReuseMode
from repro.common.stats import INSTRUCTIONS_EXECUTED, INSTRUCTIONS_SKIPPED
from repro.core.session import Session


@dataclass
class WallclockResult:
    """One workload's wall-clock measurement."""

    name: str
    repeats: int
    iters_per_repeat: int
    items: int  #: dispatched instructions in the best batch.
    items_per_s: float  #: best-batch throughput.
    p50_ms: float  #: median per-iteration latency across all batches.
    p99_ms: float  #: tail per-iteration latency across all batches.

    def as_record(self) -> dict:
        return {
            "name": self.name,
            "repeats": self.repeats,
            "iters_per_repeat": self.iters_per_repeat,
            "items": int(self.items),
            "items_per_s": float(self.items_per_s),
            "p50_ms": float(self.p50_ms),
            "p99_ms": float(self.p99_ms),
        }


def _items(session: Session) -> int:
    counters = session.stats
    return (counters.get(INSTRUCTIONS_EXECUTED)
            + counters.get(INSTRUCTIONS_SKIPPED))


def _measure(name: str, session: Session, step: Callable[[], None],
             repeats: int, iters: int, warmup: int) -> WallclockResult:
    """Warm up, then time ``repeats`` batches of ``iters`` steps."""
    for _ in range(warmup):
        step()
    pc = time.perf_counter
    best_rate = 0.0
    best_items = 0
    lats: list[float] = []
    for _ in range(repeats):
        before = _items(session)
        batch_start = pc()
        for _ in range(iters):
            t0 = pc()
            step()
            lats.append(pc() - t0)
        batch_wall = pc() - batch_start
        batch_items = _items(session) - before
        rate = batch_items / batch_wall if batch_wall > 0 else 0.0
        if rate > best_rate:
            best_rate = rate
            best_items = batch_items
    lats.sort()
    n = len(lats)
    return WallclockResult(
        name=name,
        repeats=repeats,
        iters_per_repeat=iters,
        items=best_items,
        items_per_s=best_rate,
        p50_ms=lats[n // 2] * 1000.0,
        p99_ms=lats[min(n - 1, (n * 99) // 100)] * 1000.0,
    )


# ----------------------------------------------------------------- workloads

def _training_step(session: Session, X, y, state: dict) -> None:
    """One ridge-style gradient iteration (the quickstart program)."""
    w = state["w"]
    grad = X.t() @ (X @ w) - X.t() @ y
    # step size below 2/lambda_max(X^T X) so the iterates stay finite
    w = w - 0.002 * grad
    w.compute()
    state["w"] = w


def _training_session(config: MemphisConfig):
    session = Session(config)
    data = (np.arange(200.0 * 8).reshape(200, 8) % 17.0) / 17.0
    target = (np.arange(200.0).reshape(200, 1) % 5.0) / 5.0
    X = session.read(data, "X")
    y = session.read(target, "y")
    state = {"w": session.read(np.zeros((8, 1)), "w0")}
    return session, (lambda: _training_step(session, X, y, state))


def run_quickstart(repeats: int = 5, iters: int = 300,
                   warmup: int = 30) -> WallclockResult:
    """Steady-state quickstart training loop, full MEMPHIS config.

    Observability and fault injection are disabled (the
    ``MemphisConfig.memphis()`` default), so the interpreter selects the
    fast dispatch loop; lineage interning and cache probes/puts are
    fully engaged.  This is the track's primary workload.
    """
    session, step = _training_session(MemphisConfig.memphis())
    return _measure("quickstart", session, step, repeats, iters, warmup)


def run_quickstart_base(repeats: int = 5, iters: int = 300,
                        warmup: int = 30) -> WallclockResult:
    """The same loop under the reuse-disabled baseline config."""
    session, step = _training_session(MemphisConfig.base())
    return _measure("quickstart_base", session, step, repeats, iters, warmup)


def _cellwise_step(session: Session, X, state: dict) -> None:
    """A straight-line cell-wise pipeline (batch-dispatch eligible)."""
    out = (((X * 2.0) + 1.0).sigmoid() * 0.5).relu()
    out.compute()
    state["last"] = out


def run_cellwise_chain(repeats: int = 5, iters: int = 120,
                       warmup: int = 10) -> WallclockResult:
    """Cell-wise ufunc chains under ``ReuseMode.NONE``.

    With probes and puts disabled the fast loop batch-dispatches the
    maximal ``*,+,sigmoid,*,relu`` run through the vectorized kernel
    layer — this workload regresses if chain planning or the compiled
    ufunc closures do.
    """
    config = MemphisConfig.memphis()
    config.reuse_mode = ReuseMode.NONE
    session = Session(config)
    data = (np.arange(128.0 * 128).reshape(128, 128) % 23.0) / 23.0 - 0.5
    X = session.read(data, "X")
    state: dict = {}
    return _measure("cellwise_chain", session,
                    lambda: _cellwise_step(session, X, state),
                    repeats, iters, warmup)


def run_server_mixed(repeats: int = 3, iters: int = 6,
                     warmup: int = 1) -> WallclockResult:
    """Multi-session server throughput (``repro.server``).

    Each step runs one complete shared-substrate demo — three sessions
    across two tenants on overlapping pure pipelines plus two impure
    requests, deterministically interleaved — and items aggregate the
    dispatched instructions of *every* session.  This workload regresses
    if key namespacing, cross-session probes, or the scheduler's
    activation switches add per-instruction cost.
    """
    from types import SimpleNamespace

    from repro.common.stats import Stats
    from repro.server import run_server_demo

    tally = SimpleNamespace(stats=Stats())

    def step() -> None:
        report = run_server_demo(3, seed=0)
        tally.stats.merge(report.merged)

    return _measure("server_mixed", tally, step, repeats, iters, warmup)


#: name -> (runner, fast-mode kwargs).
WALLCLOCK_WORKLOADS: dict[str, Callable[..., WallclockResult]] = {
    "quickstart": run_quickstart,
    "quickstart_base": run_quickstart_base,
    "cellwise_chain": run_cellwise_chain,
    "server_mixed": run_server_mixed,
}

#: reduced repeat counts for CI (--fast).
FAST_KWARGS = {
    "quickstart": {"repeats": 3, "iters": 150, "warmup": 20},
    "quickstart_base": {"repeats": 3, "iters": 150, "warmup": 20},
    "cellwise_chain": {"repeats": 3, "iters": 60, "warmup": 5},
    "server_mixed": {"repeats": 2, "iters": 4, "warmup": 1},
}


def run_track(fast: bool = False,
              names: list[str] | None = None) -> list[WallclockResult]:
    """Run the wall-clock track (optionally the CI-sized variant)."""
    selected = names or list(WALLCLOCK_WORKLOADS)
    results = []
    for name in selected:
        runner = WALLCLOCK_WORKLOADS[name]
        kwargs = FAST_KWARGS.get(name, {}) if fast else {}
        results.append(runner(**kwargs))
    return results
