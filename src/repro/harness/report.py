"""Tabular reporting for experiment results (paper-style rows/series)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.workloads.base import WorkloadResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Plain-text table with aligned columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def speedup_series(results: dict[str, WorkloadResult],
                   baseline: str = "Base") -> dict[str, float]:
    """system -> speedup over ``baseline`` (from simulated time)."""
    base = results[baseline].elapsed
    return {
        system: base / max(r.elapsed, 1e-12)
        for system, r in results.items()
    }


def results_table(results_by_x: dict[object, dict[str, WorkloadResult]],
                  x_label: str, title: str,
                  extra_counters: Sequence[str] = ()) -> str:
    """Paper-figure-style table: one row per x value, one column per system.

    Cells are simulated execution times in milliseconds; failed runs show
    the failure.  ``extra_counters`` appends per-system counter columns
    for the MPH run (reused RDDs, recycled pointers, ...).
    """
    systems = list(next(iter(results_by_x.values())).keys())
    headers = [x_label] + [f"{s} [ms]" for s in systems] + list(extra_counters)
    rows = []
    for x, by_system in results_by_x.items():
        row: list[object] = [x]
        for system in systems:
            result = by_system[system]
            if result.failed:
                row.append("OOM")
            else:
                row.append(result.elapsed * 1000)
        mph = by_system.get("MPH") or next(iter(by_system.values()))
        for counter in extra_counters:
            row.append(mph.counter(counter))
        rows.append(row)
    return format_table(headers, rows, title=title)


def check_metrics_agree(results: dict[str, WorkloadResult],
                        rel_tol: float = 1e-6) -> bool:
    """Verify that reuse never changed workload results across systems."""
    metrics = [r.metric for r in results.values()
               if r.metric is not None and not r.failed]
    if len(metrics) < 2:
        return True
    first = metrics[0]
    scale = max(abs(first), 1e-12)
    return all(abs(m - first) / scale < rel_tol for m in metrics)
