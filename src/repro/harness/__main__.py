"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness                 # run everything
    python -m repro.harness hcv pnmf        # run selected experiments
    python -m repro.harness --list          # list experiment names
    python -m repro.harness fig11a --trace out.json
                                            # + Chrome/Perfetto trace
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.common.config import (
    EvictionPolicyName,
    clear_fusion_override,
    clear_policy_overrides,
    install_fusion_override,
    install_policy_overrides,
)
from repro.harness import runner

EXPERIMENTS = {
    "fig2c": runner.run_experiment_fig2c,
    "fig2d": runner.run_experiment_fig2d,
    "fig11a": runner.run_experiment_fig11a,
    "fig11b": runner.run_experiment_fig11b,
    "fig12a": runner.run_experiment_fig12a,
    "fig12b": runner.run_experiment_fig12b,
    "hcv": runner.run_experiment_hcv,
    "pnmf": runner.run_experiment_pnmf,
    "hband": runner.run_experiment_hband,
    "clean": runner.run_experiment_clean,
    "hdrop": runner.run_experiment_hdrop,
    "en2de": runner.run_experiment_en2de,
    "tlvis": runner.run_experiment_tlvis,
    "table2": runner.run_experiment_table2,
    "ablation-policies": runner.run_ablation_policies,
    "ablation-ordering": runner.run_ablation_ordering,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the MEMPHIS paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="record a structured trace of every session "
                             "and write a Chrome/Perfetto trace file")
    parser.add_argument("--trace-summary", action="store_true",
                        help="print the text trace summary (top-k "
                             "instructions, hit rates, evictions); without "
                             "--trace the trace stays in memory only")
    parser.add_argument("--metrics", metavar="OUT.jsonl", default=None,
                        help="sample gauge/histogram time-series on the sim "
                             "clock (region occupancy, hit rates, GPU "
                             "residency, ...), write them as JSONL, and "
                             "print a sparkline summary; with --trace the "
                             "series also become Perfetto counter tracks")
    parser.add_argument("--explain", action="store_true",
                        help="capture every compiled block and print the "
                             "plan-level EXPLAIN (post-rewrite HOP DAG + "
                             "linearized instruction stream with reuse/"
                             "prefetch/checkpoint/evict annotations)")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="inject deterministic faults (repro.faults): "
                             "SPEC is a plan JSON file, inline JSON, or a "
                             "DSL like 'spark_task@0;gpu_alloc@2,count=2' "
                             "(see docs/FAULTS.md)")
    parser.add_argument("--verify-ir", action="store_true",
                        help="run the static IR verifier (repro.analysis) "
                             "over every compiled block; print the merged "
                             "report and exit 1 on error-severity findings")
    policy_names = [p.value for p in EvictionPolicyName]
    parser.add_argument("--policy", choices=policy_names, default=None,
                        help="eviction policy of the driver lineage cache "
                             "(CP region; default cost_size, paper Eq. 1)")
    parser.add_argument("--gpu-policy", choices=policy_names, default=None,
                        help="eviction policy of the GPU free lists "
                             "(GPU region; default cost_size, paper Eq. 2)")
    parser.add_argument("--spark-policy", choices=policy_names, default=None,
                        help="eviction policy of the Spark storage and "
                             "cache tiers (SP_BLOCKS/SP_CACHE regions; "
                             "defaults: LRU / inherit --policy)")
    parser.add_argument("--server", metavar="N", type=int, default=None,
                        help="multi-tenant server mode: run N concurrent "
                             "sessions across two tenants on one shared "
                             "substrate (deterministic seeded interleave) "
                             "and print the cross-session dedup / "
                             "per-tenant occupancy report (docs/SERVER.md)")
    parser.add_argument("--server-seed", metavar="SEED", type=int, default=0,
                        help="interleave seed for --server (default 0); "
                             "the same seed reproduces the identical "
                             "schedule, counters, and results")
    parser.add_argument("--server-report", metavar="OUT.jsonl", default=None,
                        help="with --server: also write the machine-"
                             "readable per-tenant SLO / attribution "
                             "stream (SERVER_SCHEMA JSONL, byte-"
                             "reproducible for a fixed --server-seed)")
    parser.add_argument("--fusion", action="store_true",
                        help="enable the reuse-aware operator fusion "
                             "rewrite on every session (chains of "
                             "cell-wise ops merge into single fused "
                             "instructions where the lineage cache keeps "
                             "nothing; see docs/PERFORMANCE.md)")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    if args.server is not None:
        from repro.server import run_server_demo

        start = time.time()
        report = run_server_demo(args.server, seed=args.server_seed)
        print(report.format())
        if args.server_report:
            from repro.harness.telemetry import (
                assert_valid_server_records,
                server_report_records,
                write_server_jsonl,
            )

            records = server_report_records(report, args.server,
                                            args.server_seed)
            assert_valid_server_records(records, context=args.server_report)
            write_server_jsonl(args.server_report, records)
            print(f"[server report: {len(records)} records -> "
                  f"{args.server_report}]")
        print(f"[server: {args.server} session(s), seed {args.server_seed}, "
              f"{time.time() - start:.1f}s wall]")
        return 0 if report.ok else 1

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)} "
                     f"(see --list)")

    collector = None
    if args.trace is not None or args.trace_summary:
        # --trace-summary without --trace still needs events: collect
        # in memory only and skip the file export below.
        from repro.obs import TraceCollector, enable_tracing

        collector = TraceCollector()
        enable_tracing(collector)

    metrics_collector = None
    if args.metrics is not None:
        from repro.obs import MetricsCollector, enable_metrics

        metrics_collector = MetricsCollector()
        enable_metrics(metrics_collector)

    explain_collector = None
    if args.explain:
        from repro.obs import ExplainCollector, install_explain

        explain_collector = ExplainCollector()
        install_explain(explain_collector)

    ir_collector = None
    if args.verify_ir:
        from repro.analysis import AnalysisCollector, install_collector

        ir_collector = AnalysisCollector()
        install_collector(ir_collector)

    fault_plan = None
    if args.faults is not None:
        from repro.faults import FaultPlan, install_plan

        fault_plan = FaultPlan.parse(args.faults)
        install_plan(fault_plan)
        print(f"[faults: injecting {len(fault_plan.specs)} fault spec(s), "
              f"seed {fault_plan.seed}]")

    if args.policy or args.gpu_policy or args.spark_policy:
        install_policy_overrides(
            policy=EvictionPolicyName(args.policy) if args.policy else None,
            gpu_policy=(EvictionPolicyName(args.gpu_policy)
                        if args.gpu_policy else None),
            spark_policy=(EvictionPolicyName(args.spark_policy)
                          if args.spark_policy else None),
        )
        chosen = {k: v for k, v in (("policy", args.policy),
                                    ("gpu", args.gpu_policy),
                                    ("spark", args.spark_policy)) if v}
        print(f"[memory: eviction policy overrides {chosen}]")

    if args.fusion:
        install_fusion_override(True)
        print("[compiler: reuse-aware operator fusion enabled]")

    try:
        for name in selected:
            start = time.time()
            result = EXPERIMENTS[name]()
            print(result.table)
            print(f"[{name}: regenerated in {time.time() - start:.1f}s wall]\n")
    finally:
        clear_policy_overrides()
        clear_fusion_override()
        if fault_plan is not None:
            from repro.faults import uninstall_plan

            uninstall_plan()
        counters = None
        if metrics_collector is not None:
            from repro.obs import (
                counter_tracks,
                disable_metrics,
                format_metrics,
                write_metrics_jsonl,
            )

            disable_metrics()
            counters = counter_tracks(metrics_collector)
            written = write_metrics_jsonl(metrics_collector, args.metrics)
            print(f"[metrics: {written} series from "
                  f"{metrics_collector.num_sessions} sessions -> "
                  f"{args.metrics}]")
            for registry in metrics_collector.registries:
                if registry.num_samples():
                    print()
                    print(format_metrics(registry))
                    break
        if collector is not None:
            from repro.obs import disable_tracing, export_chrome_trace

            disable_tracing()
            events = collector.events()
            if args.trace is not None:
                export_chrome_trace(events, args.trace,
                                    collector.session_labels,
                                    counters=counters)
                print(f"[trace: {len(events)} events from "
                      f"{collector.num_sessions} sessions -> {args.trace}]")
            if collector.ring.dropped:
                print(f"[trace: ring buffer dropped "
                      f"{collector.ring.dropped} oldest events]")
            if args.trace_summary:
                from repro.obs import format_summary

                print()
                print(format_summary(events))
        if explain_collector is not None:
            from repro.obs import uninstall_explain

            uninstall_explain()
            diagnostics = (ir_collector.merged().diagnostics
                           if ir_collector is not None else None)
            print()
            print(explain_collector.render(diagnostics=diagnostics))
        if ir_collector is not None:
            from repro.analysis import uninstall_collector

            uninstall_collector()
    if ir_collector is not None:
        from repro.analysis import Severity

        report = ir_collector.merged()
        print(f"[verify-ir: {ir_collector.blocks_verified} block(s) "
              f"verified -- {report.summary()}]")
        shown = report.format(min_severity=Severity.WARNING)
        if shown:
            print(shown)
        if report.errors():
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
