"""The runtime side of fault injection: arming, drawing, and recording.

A :class:`FaultInjector` compiles a :class:`~repro.faults.plan.FaultPlan`
into per-kind occurrence tables and exposes one *draw point* per fault
site in the runtime (Spark task launch, GPU allocation, federated round,
cache spill/restore, interpreter instruction).  Each draw advances that
kind's occurrence counter exactly once, so the sequence of draws — and
therefore the fault schedule — is a deterministic function of the program
and the plan.

Zero overhead when disabled: every injected backend holds
:data:`NULL_INJECTOR` (class attribute ``enabled = False``) when no plan
is active, and every hot-path hook is guarded by ``if faults.enabled:``
— the same pattern as ``repro.obs.NULL_TRACER``.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.common.simclock import HOST, SimClock
from repro.common.stats import (
    FAULT_CACHE_ENTRIES_LOST,
    FAULTS_INJECTED,
    FAULTS_RECOVERED,
    Stats,
)
from repro.faults.plan import (
    KIND_CACHE_LOST,
    KIND_EXECUTOR_LOSS,
    KIND_FED_SLOW,
    KIND_FED_TIMEOUT,
    KIND_GPU_ALLOC,
    KIND_RESTORE_IO,
    KIND_SPARK_TASK,
    KIND_SPILL_IO,
    FaultPlan,
    FaultSpec,
)
from repro.obs.events import EV_FAULT_INJECT, EV_FAULT_RECOVER, LANE_CP
from repro.obs.tracer import NULL_TRACER


class ArmedFault:
    """A scheduled fault with a live remaining-failure counter."""

    __slots__ = ("spec", "remaining")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.remaining = spec.count

    def matches(self, target: Optional[int]) -> bool:
        """Whether this fault applies to ``target`` (worker/executor id)."""
        return self.spec.target is None or self.spec.target == target

    def take(self) -> bool:
        """Consume one failure; ``False`` once the budgeted count is spent.

        Recovery loops call this once per attempt: while it returns
        ``True`` the site keeps failing, and the first ``False`` is the
        attempt that succeeds.
        """
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ArmedFault({self.spec.kind}@{self.spec.at}, "
                f"remaining={self.remaining})")


class FaultInjector:
    """Deterministic draw points + fault/recovery bookkeeping."""

    enabled = True

    def __init__(self, plan: FaultPlan, clock: SimClock, stats: Stats,
                 tracer=NULL_TRACER) -> None:
        self.plan = plan
        self.clock = clock
        self.stats = stats
        self.tracer = tracer
        #: victim selection only (lost executors / lost cache entries);
        #: never consulted unless a fault actually fires, so an empty
        #: plan draws nothing from it.
        self.rng = random.Random(plan.seed)
        # kind -> occurrence index -> armed faults at that index
        self._armed: dict[str, dict[int, list[ArmedFault]]] = {}
        # kind -> clock-keyed faults (fire at first matching site past T)
        self._timed: dict[str, list[ArmedFault]] = {}
        for spec in plan.specs:
            fault = ArmedFault(spec)
            if spec.at is not None:
                self._armed.setdefault(spec.kind, {}) \
                    .setdefault(spec.at, []).append(fault)
            else:
                self._timed.setdefault(spec.kind, []).append(fault)
        # kind -> next occurrence index (fed_timeout/fed_slow share the
        # federated round counter, advanced by fed_round()).
        self._indices: dict[str, int] = {}

    # -- occurrence counters --------------------------------------------------

    def _next_index(self, kind: str) -> int:
        idx = self._indices.get(kind, 0)
        self._indices[kind] = idx + 1
        return idx

    def _lookup(self, kind: str, at: int,
                target: Optional[int] = None) -> Optional[ArmedFault]:
        for fault in self._armed.get(kind, {}).get(at, ()):
            if fault.remaining > 0 and fault.matches(target):
                return fault
        now = self.clock.now(HOST)
        for fault in self._timed.get(kind, ()):
            if (fault.remaining > 0 and fault.matches(target)
                    and now >= fault.spec.after_time):
                return fault
        return None

    def draw(self, kind: str,
             target: Optional[int] = None) -> Optional[ArmedFault]:
        """Advance ``kind``'s occurrence counter and return any armed fault."""
        return self._lookup(kind, self._next_index(kind), target)

    # -- per-site draw points -------------------------------------------------

    def spark_task(self) -> Optional[ArmedFault]:
        """Draw for the next Spark task launch (map or result stage)."""
        return self.draw(KIND_SPARK_TASK)

    def executor_losses(self, num_executors: int) -> list[int]:
        """Executor ids lost before the next Spark job (usually empty).

        A spec's ``count`` is the number of executors lost at that job;
        without a ``target`` the victims are drawn from the injector RNG.
        """
        fault = self.draw(KIND_EXECUTOR_LOSS)
        lost: list[int] = []
        while fault is not None and fault.take():
            if fault.spec.target is not None:
                lost.append(fault.spec.target % num_executors)
            else:
                lost.append(self.rng.randrange(num_executors))
        return lost

    def gpu_alloc(self) -> Optional[ArmedFault]:
        """Draw for the next GPU allocation request."""
        return self.draw(KIND_GPU_ALLOC)

    def fed_round(self) -> int:
        """Advance the shared federated round counter; returns the index."""
        return self._next_index("fed_round")

    def fed_timeout(self, round_idx: int,
                    worker_id: int) -> Optional[ArmedFault]:
        """Armed timeout for ``worker_id`` in round ``round_idx``, if any."""
        return self._lookup(KIND_FED_TIMEOUT, round_idx, worker_id)

    def fed_slow(self, round_idx: int, worker_id: int) -> Optional[float]:
        """Slowdown factor for ``worker_id`` in round ``round_idx``, if any.

        Unlike timeouts, a slow response needs no recovery loop — the
        fault is consumed here and only stretches the worker's modeled
        duration.
        """
        fault = self._lookup(KIND_FED_SLOW, round_idx, worker_id)
        if fault is None or not fault.take():
            return None
        self.injected(KIND_FED_SLOW, round=round_idx, worker=worker_id,
                      factor=fault.spec.factor)
        return fault.spec.factor

    def spill_io(self) -> bool:
        """Whether the next driver-cache disk spill fails."""
        fault = self.draw(KIND_SPILL_IO)
        return fault is not None and fault.take()

    def restore_io(self) -> bool:
        """Whether the next driver-cache disk restore fails."""
        fault = self.draw(KIND_RESTORE_IO)
        return fault is not None and fault.take()

    def lost_cache_entries(self, session) -> int:
        """Interpreter draw point: lose cached intermediates, maybe.

        Called once per op instruction.  When armed, picks ``count``
        random cached entries and invalidates **every** payload copy
        (CP, SP, GPU, and disk), forcing the interpreter's
        recompute-from-lineage path the next time the value is needed.
        """
        fault = self.draw(KIND_CACHE_LOST)
        lost = 0
        while fault is not None and fault.take():
            victims = [e for e in session.cache.entries() if e.is_cached]
            if not victims:
                break
            entry = victims[self.rng.randrange(len(victims))]
            dropped = session.cache.invalidate_entry(
                entry, spark_mgr=session.spark_mgr)
            self.stats.inc(FAULT_CACHE_ENTRIES_LOST)
            self.injected(KIND_CACHE_LOST, key=str(entry.key),
                          backends=",".join(dropped))
            lost += 1
        return lost

    # -- bookkeeping ----------------------------------------------------------

    def injected(self, kind: str, lane: str = LANE_CP, **args) -> None:
        """Record one fired fault (counter + trace instant)."""
        self.stats.inc(FAULTS_INJECTED)
        if self.tracer.enabled:
            self.tracer.instant(EV_FAULT_INJECT, lane, kind=kind, **args)

    def recovered(self, kind: str, lane: str = LANE_CP, **args) -> None:
        """Record one completed recovery (counter + trace instant)."""
        self.stats.inc(FAULTS_RECOVERED)
        if self.tracer.enabled:
            self.tracer.instant(EV_FAULT_RECOVER, lane, kind=kind, **args)


class NullInjector:
    """Disabled injector: every draw is a no-op returning 'no fault'.

    Backends hold this singleton when no plan is active; the single
    ``enabled`` attribute check is the only per-call cost, and the
    convenience methods are safe to call anyway (tests, cold paths).
    One of the three null singletons of the zero-overhead pattern
    (docs/ARCHITECTURE.md "Zero overhead when disabled").
    """

    enabled = False
    plan = None

    def draw(self, kind, target=None):
        return None

    def spark_task(self):
        return None

    def executor_losses(self, num_executors):
        return []

    def gpu_alloc(self):
        return None

    def fed_round(self):
        return -1

    def fed_timeout(self, round_idx, worker_id):
        return None

    def fed_slow(self, round_idx, worker_id):
        return None

    def spill_io(self):
        return False

    def restore_io(self):
        return False

    def lost_cache_entries(self, session):
        return 0

    def injected(self, kind, lane=LANE_CP, **args):
        pass

    def recovered(self, kind, lane=LANE_CP, **args):
        pass


NULL_INJECTOR = NullInjector()
