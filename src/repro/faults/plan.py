"""Deterministic fault schedules: what fails, where, and how often.

A :class:`FaultPlan` is a *seeded, declarative* schedule of injected
failures plus the retry budgets that bound the recovery machinery.  Every
fault is keyed either to a **site index** (the n-th Spark task launched,
the n-th GPU allocation, the n-th federated round, the n-th interpreter
instruction, ...) or to the **sim clock** (first matching site at or
after ``after_time`` simulated seconds).  Because the simulator itself is
deterministic, a given plan replayed against the same program produces
the identical sequence of faults, retries, and recoveries — which is what
lets the chaos suite assert that faulted runs converge to outputs
numerically identical to the fault-free run.

Plans round-trip losslessly through JSON (:meth:`FaultPlan.to_json` /
:meth:`FaultPlan.from_json`) and parse from a compact command-line DSL
(:meth:`FaultPlan.parse`)::

    spark_task@3;gpu_alloc@0,count=2;fed_timeout@1,worker=2;seed=7

Fault *effects* only ever alter simulated time, allocation churn, and
counters — never computed values.  Recovery recomputes the identical
numpy kernels, so final numerics are bit-equal to the fault-free run.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Optional

# ------------------------------------------------------------- fault kinds

#: one Spark task attempt fails after computing (result discarded).
KIND_SPARK_TASK = "spark_task"
#: an executor dies before a job: its shuffle files + cached partitions vanish.
KIND_EXECUTOR_LOSS = "executor_loss"
#: one ``cudaMalloc`` fails (driver error / transient OOM).
KIND_GPU_ALLOC = "gpu_alloc"
#: a federated worker's response is lost (coordinator times out).
KIND_FED_TIMEOUT = "fed_timeout"
#: a federated worker responds ``factor``x slower than modeled.
KIND_FED_SLOW = "fed_slow"
#: a driver-cache spill write fails (payload dropped instead of spilled).
KIND_SPILL_IO = "spill_io"
#: a disk-resident cache binary is unreadable (restore fails, entry lost).
KIND_RESTORE_IO = "restore_io"
#: every copy of a randomly chosen cached intermediate is lost.
KIND_CACHE_LOST = "cache_lost"

KINDS = (
    KIND_SPARK_TASK, KIND_EXECUTOR_LOSS, KIND_GPU_ALLOC, KIND_FED_TIMEOUT,
    KIND_FED_SLOW, KIND_SPILL_IO, KIND_RESTORE_IO, KIND_CACHE_LOST,
)

#: which occurrence counter each kind is keyed to (documentation +
#: the schedule-spec reference in docs/FAULTS.md).
KIND_INDEX_MEANING = {
    KIND_SPARK_TASK: "n-th Spark task launched (map + result stages)",
    KIND_EXECUTOR_LOSS: "n-th Spark job submitted",
    KIND_GPU_ALLOC: "n-th GPU allocation request",
    KIND_FED_TIMEOUT: "n-th federated round",
    KIND_FED_SLOW: "n-th federated round",
    KIND_SPILL_IO: "n-th disk spill attempt (driver cache or executor block)",
    KIND_RESTORE_IO: "n-th driver-cache disk restore",
    KIND_CACHE_LOST: "n-th interpreter instruction",
}


@dataclass
class FaultSpec:
    """One scheduled fault.

    ``at`` indexes the kind's occurrence counter (0-based, see
    :data:`KIND_INDEX_MEANING`); ``at=None`` arms a clock-keyed fault
    that fires at the first matching site once the host sim clock
    reaches ``after_time``.  ``count`` fails the same site ``count``
    consecutive times (exercising retry loops); ``target`` restricts
    worker/executor-scoped kinds to one id; ``factor`` is the slowdown
    multiplier of :data:`KIND_FED_SLOW` faults.
    """

    kind: str
    at: Optional[int] = None
    count: int = 1
    target: Optional[int] = None
    factor: float = 4.0
    after_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of {KINDS})"
            )
        if self.at is None and self.after_time is None:
            raise ValueError(
                f"fault spec {self.kind!r} needs an index (at=) or a "
                f"clock key (after_time=)"
            )
        if self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")

    def to_json(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.at is not None:
            out["at"] = self.at
        if self.count != 1:
            out["count"] = self.count
        if self.target is not None:
            out["target"] = self.target
        if self.kind == KIND_FED_SLOW:
            out["factor"] = self.factor
        if self.after_time is not None:
            out["after_time"] = self.after_time
        return out

    @classmethod
    def from_json(cls, data: dict) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            at=data.get("at"),
            count=int(data.get("count", 1)),
            target=data.get("target"),
            factor=float(data.get("factor", 4.0)),
            after_time=data.get("after_time"),
        )


@dataclass
class FaultPlan:
    """A complete fault schedule plus recovery (retry) budgets."""

    specs: list[FaultSpec] = field(default_factory=list)
    #: seed of the injector's own RNG (victim selection for
    #: ``executor_loss`` without a target and for ``cache_lost``).
    seed: int = 1234
    #: Spark: failed task attempts tolerated per task before the job fails.
    max_task_retries: int = 3
    #: GPU: failed allocation attempts tolerated per request (each retry
    #: is preceded by an evict — ``empty_cache`` — recovery step).
    max_alloc_retries: int = 3
    #: federated: lost responses tolerated per worker per round.
    max_fed_retries: int = 4
    #: federated: first retry backoff (doubles per attempt).
    fed_backoff_base_s: float = 0.05
    #: federated: how long the coordinator waits before declaring a
    #: response lost.
    fed_timeout_s: float = 0.25
    #: federated: fraction of sites that must have responded for a round
    #: to continue in *degraded* mode once a worker exhausts its budget.
    quorum_fraction: float = 1.0

    # -- serialization -------------------------------------------------------

    def to_json(self) -> dict:
        """Lossless plain-dict form (inverse of :meth:`from_json`)."""
        return {
            "seed": self.seed,
            "max_task_retries": self.max_task_retries,
            "max_alloc_retries": self.max_alloc_retries,
            "max_fed_retries": self.max_fed_retries,
            "fed_backoff_base_s": self.fed_backoff_base_s,
            "fed_timeout_s": self.fed_timeout_s,
            "quorum_fraction": self.quorum_fraction,
            "specs": [spec.to_json() for spec in self.specs],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        return cls(
            specs=[FaultSpec.from_json(s) for s in data.get("specs", ())],
            seed=int(data.get("seed", 1234)),
            max_task_retries=int(data.get("max_task_retries", 3)),
            max_alloc_retries=int(data.get("max_alloc_retries", 3)),
            max_fed_retries=int(data.get("max_fed_retries", 4)),
            fed_backoff_base_s=float(data.get("fed_backoff_base_s", 0.05)),
            fed_timeout_s=float(data.get("fed_timeout_s", 0.25)),
            quorum_fraction=float(data.get("quorum_fraction", 1.0)),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        return cls.from_json(json.loads(text))

    # -- command-line spec ----------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--faults`` argument.

        Accepts (in precedence order) a path to a JSON plan file, an
        inline JSON object, or the ``;``-separated mini-DSL::

            kind@index[,key=value...] | kind,after=seconds[,...] | key=value

        Spec keys: ``count``, ``worker``/``target``, ``factor``,
        ``after``.  Plan keys: any numeric :class:`FaultPlan` field
        (``seed``, ``max_task_retries``, ``quorum_fraction``, ...).
        """
        spec = spec.strip()
        if os.path.isfile(spec):
            with open(spec, "r", encoding="utf-8") as fh:
                return cls.loads(fh.read())
        if spec.startswith("{"):
            return cls.loads(spec)
        plan = cls()
        for token in filter(None, (t.strip() for t in spec.split(";"))):
            head, _, tail = token.partition(",")
            if "@" in head:
                kind, _, index = head.partition("@")
                fields: dict = {"kind": kind.strip(), "at": int(index)}
            elif "=" not in head:
                fields = {"kind": head.strip()}  # clock-keyed: needs after=
            else:
                _set_plan_field(plan, token)
                continue
            for part in filter(None, (p.strip() for p in tail.split(","))):
                key, _, value = part.partition("=")
                key = key.strip()
                if key == "count":
                    fields["count"] = int(value)
                elif key in ("worker", "executor", "target"):
                    fields["target"] = int(value)
                elif key == "factor":
                    fields["factor"] = float(value)
                elif key == "after":
                    fields["after_time"] = float(value)
                else:
                    raise ValueError(f"unknown fault spec key {key!r}")
            plan.specs.append(FaultSpec(**fields))
        return plan

    # -- randomized plans (chaos sweep) ---------------------------------------

    @classmethod
    def randomize(cls, seed: int, n_faults: int = 4, max_index: int = 24,
                  kinds: Optional[tuple] = None) -> "FaultPlan":
        """A small random plan for the seed-sweep (``scripts/chaos_sweep.py``).

        Fault counts stay within the default retry budgets so every
        generated plan is recoverable; the plan itself is a pure function
        of ``seed``.
        """
        rng = random.Random(seed)
        pool = list(kinds or (
            KIND_SPARK_TASK, KIND_EXECUTOR_LOSS, KIND_GPU_ALLOC,
            KIND_CACHE_LOST, KIND_SPILL_IO, KIND_RESTORE_IO,
        ))
        specs = [
            FaultSpec(
                kind=rng.choice(pool),
                at=rng.randrange(max_index),
                count=rng.randint(1, 2),
            )
            for _ in range(n_faults)
        ]
        return cls(specs=specs, seed=seed)


def _set_plan_field(plan: FaultPlan, token: str) -> None:
    key, _, value = token.partition("=")
    key = key.strip()
    if key == "quorum":
        key = "quorum_fraction"
    current = getattr(plan, key, None)
    if current is None or key == "specs":
        raise ValueError(f"unknown fault plan field {key!r}")
    setattr(plan, key, type(current)(float(value)))


# ------------------------------------------------- ambient plan (harness)

_active_plan: Optional[FaultPlan] = None


def install_plan(plan: FaultPlan) -> FaultPlan:
    """Install an ambient fault plan (harness ``--faults``).

    Mirrors ``repro.obs.enable_tracing``: sessions created while a plan
    is installed pick it up when their config carries no explicit
    ``faults`` field, so the flag reaches sessions constructed deep
    inside workload drivers.
    """
    global _active_plan
    _active_plan = plan
    return plan


def uninstall_plan() -> Optional[FaultPlan]:
    """Remove the ambient plan; returns it for inspection."""
    global _active_plan
    plan, _active_plan = _active_plan, None
    return plan


def current_plan() -> Optional[FaultPlan]:
    """The ambient fault plan, if one is installed."""
    return _active_plan
