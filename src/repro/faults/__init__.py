"""Deterministic fault injection + lineage-based recovery (``repro.faults``).

MEMPHIS's premise is that lineage makes intermediates cheap to
reconstruct; this package is the proof harness.  A seeded
:class:`FaultPlan` schedules failures against the simulated runtime —
Spark task failures and executor loss, GPU allocation failures,
federated worker timeouts and slowdowns, cache spill/restore I/O errors,
and outright loss of cached intermediates — and the backends recover
through the same lineage machinery the paper describes: task retry with
partition recomputation, shuffle-file invalidation, GPU evict-and-retry,
federated retry-with-backoff (optionally quorum-degraded), and
interpreter-level recompute-from-lineage.

Faults never perturb numerics: every recovery replays the identical
kernels, so a faulted run converges to outputs bit-equal to the
fault-free run (the chaos suite in ``tests/test_chaos.py`` asserts
exactly this).  With no plan active the runtime holds
:data:`NULL_INJECTOR` and behaves byte-for-byte like a build without
this package.

See ``docs/FAULTS.md`` for the fault taxonomy, schedule spec format,
and per-backend recovery semantics.
"""

from repro.faults.determinism import reset_ambient_state, reset_global_ids
from repro.faults.injector import (
    NULL_INJECTOR,
    ArmedFault,
    FaultInjector,
    NullInjector,
)
from repro.faults.plan import (
    KIND_CACHE_LOST,
    KIND_EXECUTOR_LOSS,
    KIND_FED_SLOW,
    KIND_FED_TIMEOUT,
    KIND_GPU_ALLOC,
    KIND_INDEX_MEANING,
    KIND_RESTORE_IO,
    KIND_SPARK_TASK,
    KIND_SPILL_IO,
    KINDS,
    FaultPlan,
    FaultSpec,
    current_plan,
    install_plan,
    uninstall_plan,
)

__all__ = [
    "ArmedFault",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KINDS",
    "KIND_CACHE_LOST",
    "KIND_EXECUTOR_LOSS",
    "KIND_FED_SLOW",
    "KIND_FED_TIMEOUT",
    "KIND_GPU_ALLOC",
    "KIND_INDEX_MEANING",
    "KIND_RESTORE_IO",
    "KIND_SPARK_TASK",
    "KIND_SPILL_IO",
    "NULL_INJECTOR",
    "NullInjector",
    "current_plan",
    "install_plan",
    "reset_ambient_state",
    "reset_global_ids",
    "uninstall_plan",
]
