"""Cross-run determinism helpers for the chaos/differential suites.

The simulator is deterministic *within* a process, but several modules
hand out ids from module-level ``itertools.count`` generators (HOP ids,
lineage ids, RDD ids, broadcast ids, GPU pointer ids).  Two runs of the
same workload in one process therefore see different ids — harmless for
numerics, but fatal for tests that compare *trace event sequences* or
exact per-id stats between a faulted and a fault-free run.

:func:`reset_global_ids` rewinds every generator to 1, making a fresh
run id-identical to a fresh process.  The shared ``tests/conftest.py``
calls it (autouse) before every test, which is also what fixes the
historical cross-test "counter bleed": tests that asserted exact ids or
compared serialized traces would pass alone and fail mid-suite.
"""

from __future__ import annotations

import itertools


def reset_global_ids() -> None:
    """Rewind every module-level id generator to 1 (fresh-process state)."""
    import repro.backends.gpu.pointers as gpu_pointers
    import repro.backends.spark.broadcast as spark_broadcast
    import repro.backends.spark.rdd as spark_rdd
    import repro.compiler.ir as compiler_ir
    import repro.lineage.item as lineage_item

    compiler_ir._hop_ids = itertools.count(1)
    lineage_item._ids = itertools.count(1)
    spark_rdd._rdd_ids = itertools.count(1)
    spark_broadcast._bc_ids = itertools.count(1)
    gpu_pointers._ptr_ids = itertools.count(1)


def reset_ambient_state() -> None:
    """Uninstall every ambient (module-global) collector/plan.

    Keeps a crashed or sloppy test from leaking its tracer, analysis
    collector, or fault plan into the next test.
    """
    from repro.common.config import clear_fusion_override
    from repro.core.substrate import clear_ambient_substrate
    from repro.faults.plan import uninstall_plan
    from repro.obs.explain import uninstall_explain
    from repro.obs.metrics import disable_metrics
    from repro.obs.tracer import disable_tracing

    disable_tracing()
    disable_metrics()
    uninstall_explain()
    uninstall_plan()
    clear_fusion_override()
    # shared-substrate server state: uninstall the ambient substrate and
    # drop its tenant registry so one test's server cannot serve another
    clear_ambient_substrate()
    try:
        from repro.analysis import (
            uninstall_collector,
            uninstall_memplan_collector,
        )
    except ImportError:  # pragma: no cover - analysis is part of the tree
        return
    uninstall_collector()
    uninstall_memplan_collector()
