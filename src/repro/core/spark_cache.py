"""Spark-side cache management: RDD reuse, lazy GC, cost-based eviction.

Implements §4.1 of the paper:

* **Reuse RDDs** — cached entries hold :class:`DistributedMatrix`
  handles; reuse works even while the RDD is *unmaterialized* (persist is
  lazy), enabling compute sharing and shuffle-file reuse across jobs.
* **Async materialization** — after *k* reuses of a still-unmaterialized
  RDD, an asynchronous ``count()`` job materializes it so its upstream
  references become collectable.
* **Lazy garbage collection** — when a cached RDD is materialized, its
  upstream broadcast variables are destroyed, reclaiming driver memory
  held by dangling references (Fig. 2(b), Fig. 6).
* **Cost-based eviction (Eq. 1)** — cached RDDs are unpersisted in
  ascending ``(r_h + r_m + r_j) * c / s`` order when the reuse share of
  storage memory (80% by default) overflows.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.spark.backend import DistributedMatrix
from repro.backends.spark.context import SparkContext
from repro.backends.spark.rdd import RDD
from repro.common.config import CacheConfig, StorageLevel
from repro.common.simclock import SimFuture
from repro.common.stats import (
    SPARK_ASYNC_MATERIALIZE,
    SPARK_GC_CLEANED,
    SPARK_RDD_PERSISTED,
    SPARK_RDD_REUSE,
    SPARK_RDD_UNPERSISTED,
    Stats,
)
from repro.core.cache import LineageCache
from repro.core.entry import BACKEND_SP, CacheEntry
from repro.core.policies import make_policy
from repro.memory import REGION_SPARK_CACHE


class SparkCacheManager:
    """Backend-local cache manager for the Spark tier of the cache."""

    def __init__(self, cache: LineageCache, context: SparkContext,
                 config: CacheConfig, stats: Stats, arbiter=None) -> None:
        self.cache = cache
        self.sc = context
        self.config = config
        self.stats = stats
        # the Spark tier is session-private even when the lineage cache
        # is shared (repro.server), so the SP_CACHE region must register
        # on the session's own arbiter, not the cache's (shared) one.
        self.arbiter = arbiter if arbiter is not None else cache.arbiter
        policy = cache.policy if config.spark_policy is None \
            else make_policy(config.spark_policy)
        self._region = self.arbiter.add_region(
            REGION_SPARK_CACHE,
            int(context.block_manager.capacity * config.spark_cache_fraction),
            policy=policy, unlimited=config.unlimited,
        )
        #: entry -> reuse-miss count while unmaterialized (async trigger).
        self._unmat_misses: dict[int, int] = {}
        self._pending_counts: list[SimFuture] = []
        self.storage_level = StorageLevel.MEMORY_AND_DISK

    @property
    def budget(self) -> int:
        """Reuse share of aggregate storage memory (80% by default)."""
        return int(
            self.sc.block_manager.capacity * self.config.spark_cache_fraction
        )

    @property
    def sp_bytes(self) -> int:
        """Estimated bytes of persisted, cache-managed RDDs."""
        return self._region.used

    def metrics_gauges(self) -> dict[str, float]:
        """Gauge snapshot for the metrics sampler (``repro.obs.metrics``)."""
        budget = self.budget
        return {
            "spark/cache_bytes": float(self.sp_bytes),
            "spark/cache_frac": self.sp_bytes / budget if budget else 0.0,
        }

    # -- caching ---------------------------------------------------------------

    def cache_rdd(self, entry: CacheEntry, dm: DistributedMatrix) -> bool:
        """Mark ``dm`` for distributed caching under ``entry`` (persist)."""
        size = dm.nbytes
        if not self.arbiter.reserve(
            REGION_SPARK_CACHE, size, candidates=self._candidates,
            evict=self.evict, now=0.0,
        ):
            return False
        dm.rdd.persist(self.storage_level)
        entry.put_payload(BACKEND_SP, dm, size, entry.compute_cost)
        entry.rdd_materialized = False
        self.arbiter.commit(REGION_SPARK_CACHE, size)
        self.stats.inc(SPARK_RDD_PERSISTED)
        return True

    def reuse_rdd(self, entry: CacheEntry) -> Optional[DistributedMatrix]:
        """Reuse a cached RDD (even if unmaterialized, §4.1)."""
        dm = entry.get_payload(BACKEND_SP)
        if dm is None:
            return None
        self.stats.inc(SPARK_RDD_REUSE)
        self._refresh_materialization(entry, dm)
        if not entry.rdd_materialized:
            misses = self._unmat_misses.get(entry.key.id, 0) + 1
            self._unmat_misses[entry.key.id] = misses
            if misses >= self.config.async_materialize_after_misses:
                self._async_materialize(entry, dm)
                self._unmat_misses[entry.key.id] = 0
        else:
            self.lazy_gc(entry, dm)
        return dm

    # -- memory management -------------------------------------------------------

    def make_space(self, size: int) -> bool:
        """Evict cached RDDs (Eq. 1 order) until ``size`` bytes fit."""
        return self.arbiter.ensure_space(
            REGION_SPARK_CACHE, size, candidates=self._candidates,
            evict=self.evict, now=0.0,
        )

    def evict(self, entry: CacheEntry) -> None:
        """Unpersist the RDD of ``entry`` and drop its SP payload."""
        dm = entry.get_payload(BACKEND_SP)
        if dm is None:
            return
        dm.rdd.unpersist()
        freed = entry.size if entry.size else dm.nbytes
        self.arbiter.release(REGION_SPARK_CACHE, freed)
        self.arbiter.record_evict(REGION_SPARK_CACHE, freed,
                                  rdd=dm.rdd.id)
        self.cache.drop_backend_payload(entry, BACKEND_SP)
        self.stats.inc(SPARK_RDD_UNPERSISTED)

    def _candidates(self) -> list[CacheEntry]:
        return [
            e for e in self.cache.entries()
            if e.is_cached and BACKEND_SP in e.payloads
        ]

    def _victim(self) -> Optional[CacheEntry]:
        return self.arbiter.select_victim(
            REGION_SPARK_CACHE, self._candidates(), now=0.0
        )

    # -- lazy GC and async materialization -------------------------------------------

    def lazy_gc(self, entry: CacheEntry, dm: DistributedMatrix) -> None:
        """Destroy upstream broadcasts of a materialized cached RDD."""
        cleaned = 0
        for rdd in self._upstream(dm.rdd):
            for bc in rdd.broadcast_refs:
                if not bc.destroyed:
                    bc.destroy()
                    cleaned += 1
        if cleaned:
            self.stats.inc(SPARK_GC_CLEANED, cleaned)

    def _async_materialize(self, entry: CacheEntry,
                           dm: DistributedMatrix) -> None:
        """Trigger an asynchronous count() to materialize the RDD."""
        future = self.sc.count_async(dm.rdd)
        self._pending_counts.append(future)
        entry.jobs += 1
        self.stats.inc(SPARK_ASYNC_MATERIALIZE)
        self._refresh_materialization(entry, dm)

    def _refresh_materialization(self, entry: CacheEntry,
                                 dm: DistributedMatrix) -> None:
        info = self.sc.block_manager.rdd_storage_info(
            dm.rdd.id, dm.rdd.num_partitions
        )
        entry.rdd_materialized = info["fully_cached"]

    @staticmethod
    def _upstream(rdd: RDD) -> list[RDD]:
        """All RDDs reachable upstream of ``rdd`` (including itself)."""
        seen: set[int] = set()
        order: list[RDD] = []
        stack = [rdd]
        while stack:
            node = stack.pop()
            if node.id in seen:
                continue
            seen.add(node.id)
            order.append(node)
            stack.extend(node.parents())
        return order
