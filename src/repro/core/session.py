"""The MEMPHIS session: public entry point of the library.

A :class:`Session` owns the three backends, the hierarchical lineage
cache, and the compiler; it exposes the handle API (``read``, ``rand``,
arithmetic on :class:`MatrixHandle`), multi-level (function) reuse, loop
and block contexts that drive the program-level rewrites of §5.2, and
the lineage APIs ``serialize``/``recompute`` of §3.1.

Typical use::

    from repro import Session, MemphisConfig

    sess = Session(MemphisConfig.memphis())
    X = sess.read(features, "X")
    y = sess.read(labels, "y")
    A = X.t() @ X
    b = (y.t() @ X).t()
    beta = sess.solve(A + 0.1 * sess.eye(X.ncol), b)
    print(beta.compute())
"""

from __future__ import annotations

import contextlib
import weakref
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.analysis.hook import current_collector as current_analysis_collector
from repro.analysis.manager import verify_ir
from repro.analysis.memplan import (
    SessionMemPlanner,
    current_memplan_collector,
    format_footprint_table,
    format_region_peaks,
    plan_block,
    plan_diagnostics,
)
from repro.backends.cpu.backend import CpuBackend
from repro.backends.gpu.backend import GpuBackend, GpuData
from repro.backends.gpu.memmanager import MODE_MALLOC, MODE_MEMPHIS, MODE_POOL
from repro.backends.spark.backend import SparkBackend
from repro.backends.spark.context import SparkContext
from repro.common.config import MemphisConfig, ReuseMode
from repro.common.errors import RecomputationError, VerificationError
from repro.common.simclock import HOST, SimClock
from repro.common.stats import (
    EVICT_INSTRUCTIONS,
    FUNC_HITS,
    MEMPLAN_BLOCKS_PLANNED,
    Stats,
)
from repro.compiler.ir import (
    KIND_OP,
    Hop,
    data_hop,
    literal_hop,
    op_hop,
)
from repro.compiler.linearize import depth_first, max_parallelize
from repro.compiler.rewrites.async_ops import (
    consumers_map,
    place_broadcast,
    place_prefetch,
)
from repro.compiler.rewrites.checkpoint import (
    place_shared_checkpoints,
    should_checkpoint_loop_var,
)
from repro.compiler.rewrites.cse import eliminate_common_subexpressions
from repro.compiler.rewrites.fusion import apply_fusion
from repro.compiler.rewrites.tuning import ProgramBlock, tune_block
from repro.core.entry import BACKEND_CP, BACKEND_GPU, BACKEND_SP
from repro.core.spark_cache import SparkCacheManager
from repro.core.substrate import (
    SessionContext,
    Substrate,
    current_substrate,
)
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.faults.plan import current_plan
from repro.lineage.item import (
    LineageItem,
    function_item,
    literal,
)
from repro.memory import REGION_CP, MemoryArbiter
from repro.lineage.recompute import hops_from_item
from repro.lineage.serialize import deserialize, serialize
from repro.obs.explain import (
    LEVEL_FULL,
    ExplainCollector,
    current_explain,
    render_plan,
    snapshot_plan,
)
from repro.obs.metrics import NULL_METRICS, MetricsCollector, current_metrics
from repro.obs.tracer import NULL_TRACER, TraceCollector, current_collector
from repro.runtime.handles import MatrixHandle
from repro.runtime.interpreter import Interpreter, Slot
from repro.runtime.placement import assign_placements, matmul_pattern
from repro.runtime.values import MatrixValue, ScalarValue, Value


class Session:
    """One MEMPHIS execution context (driver + backends + cache)."""

    def __init__(self, config: Optional[MemphisConfig] = None, *,
                 substrate: Optional[Substrate] = None,
                 tenant: Optional[str] = None) -> None:
        self.config = config or MemphisConfig.memphis()
        self.clock = SimClock()
        self.stats = Stats()
        # structured tracing (repro.obs): an ambient collector (harness
        # --trace) wins; otherwise the config flag creates a private one.
        collector = current_collector()
        if collector is None and self.config.trace_enabled:
            collector = TraceCollector(self.config.trace_buffer)
        self.trace_collector = collector
        self.tracer = (
            collector.tracer(
                self.clock,
                label=f"{self.config.reuse_mode.value}",
                stats=self.stats,
            )
            if collector is not None else NULL_TRACER
        )
        # metrics time-series (repro.obs.metrics): same ambient-wins
        # pattern as tracing; without either source, NULL_METRICS keeps
        # the interpreter's per-instruction cost a single attribute check.
        mcollector = current_metrics()
        if mcollector is None and self.config.metrics_enabled:
            mcollector = MetricsCollector(self.config.metrics_interval)
        self.metrics_collector = mcollector
        self.metrics = (
            mcollector.registry(
                self.clock,
                label=f"{self.config.reuse_mode.value}",
                stats=self.stats,
                interval=self.config.metrics_interval,
            )
            if mcollector is not None else NULL_METRICS
        )
        # plan-level EXPLAIN (repro.obs.explain): an ambient collector
        # (harness --explain) wins; the config flag creates a private
        # one whose plans Session.explain() renders without arguments.
        explain = current_explain()
        if explain is None and self.config.explain_capture:
            explain = ExplainCollector()
        self.explain_collector = explain
        # fault injection (repro.faults): an explicit plan on the config
        # wins; otherwise an ambient plan (harness --faults) applies.
        # With neither, NULL_INJECTOR keeps every hot-path guard a single
        # ``enabled`` attribute check.
        plan = self.config.faults
        if plan is None:
            plan = current_plan()
        self.faults = (
            FaultInjector(plan, self.clock, self.stats, tracer=self.tracer)
            if plan is not None else NULL_INJECTOR
        )
        # reuse substrate (repro.core.substrate): the arbiter with the
        # CP/DISK ledgers, the lineage cache, and the interner.  The
        # default is a *private* substrate built from this session's own
        # stats/clock/tracer — exactly the object graph sessions owned
        # before the substrate layer existed, so single-session
        # behaviour is byte-identical.  An injected (or ambient) shared
        # substrate is attached instead: lineage keys are namespaced per
        # the determinism rules and CP/DISK admission goes through the
        # tenant's fair share (see docs/SERVER.md).
        if substrate is None:
            substrate = current_substrate()
        if substrate is not None and substrate.shared:
            self.substrate = substrate
            self._ctx: Optional[SessionContext] = substrate.attach(
                self, tenant
            )
            self.cache = substrate.cache
            self.lineage_interner = substrate.interner
            # backend regions (buffer pool, Spark tiers, GPU) stay
            # session-private: only CP/DISK live on the shared arbiter.
            self.arbiter = MemoryArbiter(
                self.stats, tracer=self.tracer, faults=self.faults
            )
            # holistic eviction still consults driver-cache residency:
            # the session's GPU manager asks the *shared* cache.
            self.arbiter.register_residency(
                REGION_CP, substrate.cache.has_host_copy_for
            )
        else:
            self.substrate = Substrate(
                self.config, stats=self.stats, clock=self.clock,
                tracer=self.tracer, faults=self.faults,
            )
            self._ctx = None
            self.arbiter = self.substrate.arbiter
            self.cache = self.substrate.cache
            # hash-consing table for lineage keys: the interpreter's
            # TRACE step interns every op item, so re-traced
            # instructions return the canonical object and cache probes
            # hit the dict's identity fast path instead of structural
            # DAG comparison.
            self.lineage_interner = self.substrate.interner
        self.cpu = CpuBackend(self.config.cpu, self.clock, self.stats)
        self.spark_context = SparkContext(
            self.config.spark, self.clock, self.stats, tracer=self.tracer,
            faults=self.faults, arbiter=self.arbiter,
        )
        self.spark = SparkBackend(self.spark_context)
        self.spark_mgr = SparkCacheManager(
            self.cache, self.spark_context, self.config.cache, self.stats,
            arbiter=self.arbiter,
        )
        self.gpu = GpuBackend(
            self.config.gpu, self.clock, self.stats,
            mode=self._gpu_mode(), tracer=self.tracer, faults=self.faults,
            arbiter=self.arbiter,
        )
        self.gpu.memory.on_invalidate = self.cache.on_gpu_invalidate
        self.interpreter = Interpreter(self)
        self.delay_factor = self.config.cache.delay_factor
        #: bound server request (``repro.obs.request``): set by the
        #: scheduler via :meth:`bind_request`; ``None`` for standalone
        #: sessions, at zero hot-path cost.
        self.request = None
        #: named input datasets, kept for lineage-based recovery: when a
        #: cached intermediate is lost to a fault, RECOMPUTE replays its
        #: trace from these roots (§3.2).
        self._datasets: dict[str, Union[np.ndarray, float]] = {}
        self._seed_counter = 10_000_000
        self._last_loop_name: Optional[str] = None
        # static IR verification (repro.analysis): the config flag makes
        # every compiled block raise on error-severity diagnostics; an
        # ambient collector (python -m repro.analysis, harness
        # --verify-ir) verifies without raising and accumulates findings.
        self.ir_collector = current_analysis_collector()
        self._verify_ir = bool(
            self.config.verify_ir or self.ir_collector is not None
        )
        # static memory planning (repro.analysis.memplan): the config
        # flag or an ambient MemplanCollector (python -m repro.analysis
        # --memplan) activates a per-session planner that predicts each
        # block's per-region peak, bulk-reserves it via reserve_plan,
        # and records observed watermarks for predicted-vs-observed
        # comparison.  None keeps evaluate's planning cost at one check.
        self.memplan_collector = current_memplan_collector()
        self.memplanner: Optional[SessionMemPlanner] = None
        if self.config.memplan or self.memplan_collector is not None:
            self.memplanner = SessionMemPlanner(self.config)
            if self.memplan_collector is not None:
                self.memplan_collector.register(self, self.memplanner)

    def _gpu_mode(self) -> str:
        if self.config.gpu_memory_mode is not None:
            return self.config.gpu_memory_mode
        if self.config.reuse_mode in (ReuseMode.FULL, ReuseMode.OPERATOR_ONLY):
            return MODE_MEMPHIS
        # SystemDS's baseline GPU backend already maintains free-list
        # pools; MODE_MALLOC (cudaMalloc/cudaFree per operation) is only
        # used by the forced-allocation micro-benchmark of Fig. 2(d)
        return MODE_POOL

    # ------------------------------------------------------------- constructors

    def read(self, data: Union[np.ndarray, float, int],
             name: Optional[str] = None) -> MatrixHandle:
        """Bind an input dataset (or scalar) as an evaluated handle."""
        if isinstance(data, (float, int)):
            value: Value = ScalarValue(float(data))
        else:
            value = MatrixValue(np.asarray(data, dtype=np.float64))
        handle = MatrixHandle(self, literal_hop(0.0), name=name)
        handle.hop = data_hop(handle, value.shape)
        handle.lineage = (
            LineageItem("data", (name,)) if name else
            LineageItem("data", (f"anon_{handle.hop.id}",))
        )
        handle.payloads = {BACKEND_CP: value}
        handle.hop.bundle = (handle.lineage, handle.payloads)
        if name is not None:
            self._datasets[name] = (
                value.data if isinstance(value, MatrixValue)
                else float(data)
            )
            if self._ctx is not None:
                # shared substrate: record the content fingerprint so
                # ``data`` leaves only unify across sessions reading the
                # same bytes under this name
                self.substrate.register_dataset(
                    self._ctx, name, self._datasets[name]
                )
        return handle

    def scalar(self, value: float) -> MatrixHandle:
        """A literal scalar handle."""
        return MatrixHandle(self, literal_hop(float(value)))

    def rand(self, rows: int, cols: int, min: float = 0.0, max: float = 1.0,
             sparsity: float = 1.0, pdf: str = "uniform",
             seed: Optional[int] = None) -> MatrixHandle:
        """Random matrix; a fixed ``seed`` makes the result reusable.

        Without a seed, a fresh unique seed is drawn (the lineage then
        never matches, i.e. the operation is treated as non-deterministic,
        matching SystemDS's handling of unseeded ``rand``).
        """
        if seed is None:
            self._seed_counter += 1
            seed = self._seed_counter
        return MatrixHandle(self, op_hop("rand", [], {
            "rows": rows, "cols": cols, "min": min, "max": max,
            "sparsity": sparsity, "pdf": pdf, "seed": int(seed),
        }))

    def seq(self, start: float, stop: float, step: float = 1.0) -> MatrixHandle:
        """Column vector ``start, start+step, ..., <= stop``."""
        return MatrixHandle(self, op_hop("seq", [], {
            "from": start, "to": stop, "incr": step,
        }))

    def fill(self, rows: int, cols: int, value: float) -> MatrixHandle:
        """Constant matrix (via rand with min == max)."""
        return self.rand(rows, cols, min=value, max=value, seed=0)

    def eye(self, n: int) -> MatrixHandle:
        """Identity matrix."""
        return self.diag(self.fill(n, 1, 1.0))

    def diag(self, handle: MatrixHandle) -> MatrixHandle:
        return MatrixHandle(self, op_hop("diag", [handle.hop]))

    # ------------------------------------------------------------------ operators

    def solve(self, a: MatrixHandle, b: MatrixHandle) -> MatrixHandle:
        """Solve the linear system ``A x = b``."""
        return MatrixHandle(self, op_hop("solve", [a.hop, b.hop]))

    def cbind(self, *handles: MatrixHandle) -> MatrixHandle:
        return MatrixHandle(
            self, op_hop("cbind", [h.hop for h in handles])
        )

    def rbind(self, *handles: MatrixHandle) -> MatrixHandle:
        return MatrixHandle(
            self, op_hop("rbind", [h.hop for h in handles])
        )

    def table(self, rows: MatrixHandle, cols: MatrixHandle,
              nrow: int, ncol: int) -> MatrixHandle:
        """Contingency table (used for one-hot encoding)."""
        return MatrixHandle(self, op_hop(
            "table", [rows.hop, cols.hop], {"rows": nrow, "cols": ncol}
        ))

    def order(self, handle: MatrixHandle, by: int = 1,
              decreasing: bool = False) -> MatrixHandle:
        return MatrixHandle(self, op_hop(
            "order", [handle.hop], {"by": by, "decreasing": decreasing}
        ))

    def conv2d(self, images: MatrixHandle, filters: MatrixHandle,
               shape: dict) -> MatrixHandle:
        """2-D convolution over linearized NCHW matrices.

        ``shape`` holds N/C/H/W/K/R/S plus optional stride and pad.
        """
        return MatrixHandle(self, op_hop(
            "conv2d", [images.hop, filters.hop], dict(shape)
        ))

    def maxpool(self, images: MatrixHandle, shape: dict) -> MatrixHandle:
        """Max pooling over linearized NCHW matrices."""
        return MatrixHandle(self, op_hop("maxpool", [images.hop], dict(shape)))

    def bias_add(self, x: MatrixHandle, bias: MatrixHandle) -> MatrixHandle:
        return MatrixHandle(self, op_hop("bias_add", [x.hop, bias.hop]))

    def reshape(self, x: MatrixHandle, rows: int, cols: int) -> MatrixHandle:
        return MatrixHandle(self, op_hop(
            "reshape", [x.hop], {"rows": rows, "cols": cols}
        ))

    def recode(self, x: MatrixHandle) -> MatrixHandle:
        """Dictionary-encode categorical columns to dense 1-based codes."""
        return MatrixHandle(self, op_hop("recode", [x.hop]))

    def bin(self, x: MatrixHandle, num_bins: int = 10) -> MatrixHandle:
        """Equi-width binning of numerical columns."""
        return MatrixHandle(self, op_hop("bin", [x.hop],
                                         {"num_bins": num_bins}))

    def quantile(self, x: MatrixHandle, p: float) -> MatrixHandle:
        """Column-wise quantile at probability ``p``."""
        return MatrixHandle(self, op_hop("quantile", [x.hop], {"p": p}))

    # ------------------------------------------------------------------ evaluation

    def _compile(self, handles: Sequence[MatrixHandle]):
        """Run the full compile pipeline over one basic block.

        Rewrites (CSE, placement, transpose fusion, checkpoint/prefetch/
        broadcast placement) and linearization, shared verbatim between
        :meth:`evaluate` and :meth:`explain` so a plan dump shows exactly
        what would execute.  Returns ``(roots, root_hops, order, extra)``
        or ``None`` when nothing is pending.
        """
        roots = [h for h in handles if h.hop.kind == KIND_OP]
        if not roots:
            return None
        root_hops = [h.hop for h in roots]
        extra: dict[int, list] = {}
        if self.config.enable_cse:
            root_hops, extra = eliminate_common_subexpressions(root_hops)
            for handle, hop in zip(roots, root_hops):
                handle.hop = hop
        # one traversal serves the whole pipeline below: after CSE the
        # DAG structure is frozen (placement and the rewrites only set
        # per-hop flags), so each pass re-walking the DAG was pure
        # repeated traversal cost.  depth_first yields the deduplicated
        # post-order every pass needs (inputs before consumers) and
        # doubles as the final instruction order when no remote chains
        # call for max_parallelize reordering.
        nodes = depth_first(root_hops)
        assign_placements(root_hops, self.config, nodes)
        consumers = consumers_map(root_hops, nodes)
        self._mark_fused_transposes(root_hops, consumers, nodes)
        if self.config.enable_fusion:
            # reuse-aware operator fusion: after CSE/placement (chains
            # must respect both), before checkpoint/prefetch/broadcast
            # placement (those passes must see the fused stream).
            root_hops, fused, replaced = apply_fusion(
                root_hops, nodes, consumers, self.config, self.stats,
                protected=set(extra),
            )
            if fused:
                for handle, hop in zip(roots, root_hops):
                    handle.hop = hop
                extra = {
                    replaced[hid].id if hid in replaced else hid: handles_
                    for hid, handles_ in extra.items()
                }
                nodes = depth_first(root_hops)
                consumers = consumers_map(root_hops, nodes)
        place_shared_checkpoints(root_hops, self.config, consumers, nodes)
        place_prefetch(root_hops, self.config, consumers, nodes)
        place_broadcast(root_hops, self.config, consumers, nodes)
        if self.config.enable_max_parallelize:
            order = max_parallelize(root_hops, nodes)
        else:
            order = nodes
        return roots, root_hops, order, extra

    def _activate(self) -> None:
        """Make this session the shared cache's active scope (no-op when
        the substrate is private)."""
        if self._ctx is not None:
            self.substrate.activate(self._ctx)

    def bind_request(self, ctx) -> None:
        """Bind a server :class:`~repro.obs.request.RequestContext`.

        While bound, every event this session's stack emits — dispatch
        spans, arbiter/cache instants, verifier diagnostics — carries
        the request's ``request_id``/``tenant`` args, and entries the
        shared cache creates record the request as their producer.
        Pass ``None`` to unbind.  Zero overhead when untraced: binding
        a :data:`~repro.obs.tracer.NULL_TRACER` is a no-op.
        """
        self.request = ctx
        if self._ctx is not None:
            self._ctx.request = ctx
        self.tracer.bind_request(ctx)

    def evaluate(self, handles: Sequence[MatrixHandle]) -> None:
        """Compile and execute the DAGs of ``handles`` (one basic block)."""
        self._activate()
        compiled = self._compile(handles)
        if compiled is None:
            return
        _, root_hops, order, extra = compiled
        if self.explain_collector is not None:
            self.explain_collector.capture(root_hops, order, self.config)
        # static memory planning (repro.analysis.memplan): derive the
        # block's per-region peak footprint and bulk-reserve it before
        # verification; a failed verification cancels the reservation.
        plan = None
        reservation = None
        if self.memplanner is not None:
            plan = self.memplanner.plan(root_hops, order)
            self.stats.inc(MEMPLAN_BLOCKS_PLANNED)
            if self._ctx is not None:
                # multi-tenant admission gate: the shared-region subset
                # of the demands must pass the tenant's quota and a
                # strict bulk reservation, or AdmissionError surfaces to
                # the scheduler as backpressure before anything runs
                self._ctx.admit(plan.admission_demands())
            reservation = self.arbiter.reserve_plan(plan.admission_demands())
        try:
            if self._verify_ir:
                # static verification gate: runs the repro.analysis pass
                # pipeline over the post-rewrite DAG + proposed order
                # before anything executes; raises iff config.verify_ir
                verify_ir(
                    root_hops, order, self.config,
                    tracer=self.tracer, stats=self.stats,
                    collector=self.ir_collector,
                    raise_on_error=self.config.verify_ir,
                )
            if (plan is not None and self.config.memplan_enforce
                    and plan.errors):
                # compile-time admission control: an over-budget plan
                # with no feasible spill schedule never starts executing
                raise VerificationError(
                    "memory plan rejected: "
                    + "; ".join(d.format() for d in plan.errors)
                )
        except Exception:
            if reservation is not None:
                reservation.cancel()
            raise
        if reservation is not None:
            # verified: admit the plan.  Commit drops the bulk holds —
            # execution charges the ledgers instruction by instruction.
            reservation.commit()
        planned_spills = None
        if plan is not None and self.config.memplan_spills:
            spill_map = plan.executable_spills()
            if spill_map:
                planned_spills = spill_map
        env = self.interpreter.run(order, planned_spills=planned_spills)
        for hop in order:
            if hop.kind != KIND_OP:
                continue
            slot = env[hop.id]
            if slot.fused_from is not None:
                continue
            handle = hop.handle
            if handle is None and not extra.get(hop.id):
                continue
            if slot.future is not None and BACKEND_CP not in slot.payloads:
                # an asynchronous action whose value escapes this block:
                # resolve the future so the handle carries the prefetched
                # driver copy (and the cache its action-reuse entry)
                self.interpreter._to_cp(slot)
            if handle is not None:
                self._rebind(handle, slot)
            for extra_handle in extra.get(hop.id, ()):  # CSE-merged handles
                self._rebind(extra_handle, slot)
        self.interpreter.release_acquired()
        if self.memplanner is not None:
            # record the runtime's per-region peak watermarks so the
            # static prediction stays comparable (explain / --memplan)
            self.memplanner.observe(self.arbiter)
        if self.metrics.enabled:
            # end-of-block sample: even tiny blocks (fewer instructions
            # than the sampling interval) contribute one point per series
            self.metrics.sample(self)

    def compute(self, handle: MatrixHandle) -> np.ndarray:
        """Force evaluation and return the driver-side numpy result."""
        self._activate()
        if handle.hop.kind == KIND_OP:
            self.evaluate([handle])
        if BACKEND_CP not in handle.payloads and handle.lineage is not None:
            entry = (
                self.cache.probe(handle.lineage)
                if self.interpreter._probe_enabled(self.config.reuse_mode)
                else self.cache.get_entry(handle.lineage)
            )
            if entry is not None and BACKEND_CP in entry.payloads:
                handle.payloads[BACKEND_CP] = entry.payloads[BACKEND_CP]
        if BACKEND_CP not in handle.payloads:
            slot = Slot(handle.lineage)
            slot.payloads = handle.payloads
            value = self.interpreter._to_cp(slot)
            handle.payloads[BACKEND_CP] = value
        value = handle.payloads[BACKEND_CP]
        if isinstance(value, ScalarValue):
            return np.full((1, 1), value.as_float())
        return value.data

    def _rebind(self, handle: MatrixHandle, slot: Slot) -> None:
        new_gpu: Optional[GpuData] = slot.payloads.get(BACKEND_GPU)
        handle.bind(slot.lineage, slot.payloads)
        if new_gpu is not None and not new_gpu.ptr.freed:
            self.gpu.memory.retain(new_gpu.ptr)
            self._attach_gpu_finalizer(handle.hop, new_gpu.ptr)

    def _attach_gpu_finalizer(self, hop, ptr) -> None:
        """Release the GPU reference when the data hop becomes garbage.

        Payload lifetime follows the hop (one-way references, no cycles),
        so CPython's reference counting releases pointers promptly when
        the last handle or consumer DAG drops them.
        """
        hop.finalizer = weakref.finalize(
            hop, _release_ptr, self.gpu.memory, ptr
        )

    def _mark_fused_transposes(self, roots: list[Hop],
                               consumers: Optional[dict] = None,
                               nodes: Optional[list[Hop]] = None) -> None:
        """Fuse ``r'`` feeding tsmm/cpmm physical operators (skip exec)."""
        if nodes is None:
            nodes = [hop for root in roots for hop in root.iter_dag()]
        if consumers is None:
            consumers = consumers_map(roots, None)
        for hop in nodes:
            if hop.kind != KIND_OP or hop.opcode != "ba+*":
                continue
            if hop.placement != BACKEND_SP:
                continue
            pattern = matmul_pattern(hop, self.config)
            if pattern not in ("tsmm", "cpmm"):
                continue
            t_hop = hop.inputs[0]
            if t_hop.opcode == "r'" and len(
                    consumers.get(t_hop.id, ())) == 1:
                t_hop.fused = True

    # --------------------------------------------------------- multi-level reuse

    def function(self, name: Optional[str] = None,
                 deterministic: bool = True) -> Callable:
        """Decorator enabling function-level (coarse-grained) reuse (§3.3).

        The wrapped function's outputs are cached under a special lineage
        item of the function name and input lineages; a repeated call with
        identical inputs skips the body entirely, even when inputs and
        outputs span multiple backends.
        """

        def decorate(fn: Callable) -> Callable:
            fname = name or fn.__name__

            def wrapper(*args):
                if not deterministic or self.config.reuse_mode not in (
                    ReuseMode.FULL, ReuseMode.COARSE_ONLY
                ):
                    return fn(*args)
                self._activate()
                key = self._function_key(fname, args)
                entry = self.cache.probe(key)
                if entry is not None:
                    outputs = self._restore_function_outputs(entry)
                    if outputs is not None:
                        self.stats.inc(FUNC_HITS)
                        return outputs
                t0 = self.clock.now(HOST)
                result = fn(*args)
                self._cache_function_outputs(key, result, t0)
                return result

            wrapper.__name__ = fn.__name__
            wrapper.__doc__ = fn.__doc__
            return wrapper

        return decorate

    def _function_key(self, fname: str, args: tuple) -> LineageItem:
        items = []
        for arg in args:
            if isinstance(arg, MatrixHandle):
                if arg.lineage is None:
                    self.evaluate([arg])
                items.append(arg.lineage)
            else:
                items.append(literal(arg))
        return function_item(fname, tuple(items))

    def _cache_function_outputs(self, key: LineageItem, result,
                                t0: float) -> None:
        outputs = result if isinstance(result, tuple) else (result,)
        handles = [o for o in outputs if isinstance(o, MatrixHandle)]
        pending = [h for h in handles if h.hop.kind == KIND_OP]
        if pending:
            self.evaluate(pending)
        snapshot = []
        for out in outputs:
            if isinstance(out, MatrixHandle):
                snapshot.append(
                    ("handle", out.lineage, dict(out.payloads), out.shape)
                )
            else:
                snapshot.append(("value", out))
        elapsed = self.clock.now(HOST) - t0
        cost = max(elapsed * self.config.cpu.flops_per_s, 1.0)
        size = sum(
            payloads.get(BACKEND_CP).nbytes
            for kind, *rest in snapshot
            if kind == "handle"
            for payloads in [rest[1]]
            if payloads.get(BACKEND_CP) is not None
        )
        self.cache.put(key, (snapshot, isinstance(result, tuple)),
                       BACKEND_CP, max(size, 8), cost, delay_factor=1)

    def _restore_function_outputs(self, entry):
        payload = entry.get_payload(BACKEND_CP)
        if payload is None:
            return None
        snapshot, was_tuple = payload
        outputs = []
        for record in snapshot:
            if record[0] == "value":
                outputs.append(record[1])
                continue
            _, lineage, payloads, shape = record
            payloads = dict(payloads)
            gpu_payload = payloads.get(BACKEND_GPU)
            if gpu_payload is not None and gpu_payload.ptr.freed:
                payloads.pop(BACKEND_GPU)
            if not payloads:
                return None  # all copies lost: treat as a miss
            handle = MatrixHandle(self, literal_hop(0.0))
            handle.hop = data_hop(handle, shape)
            gpu_payload = payloads.get(BACKEND_GPU)
            handle.bind(lineage, payloads)
            if gpu_payload is not None:
                self.gpu.memory.reuse_from_free(gpu_payload.ptr)
                self._attach_gpu_finalizer(handle.hop, gpu_payload.ptr)
            outputs.append(handle)
        return tuple(outputs) if was_tuple else outputs[0]

    # -------------------------------------------------------------- program hooks

    @contextlib.contextmanager
    def loop(self, name: str):
        """Loop context driving the program-level rewrites of §5.2.

        Entering a loop whose allocation pattern differs from the
        previous loop injects an ``evict`` instruction (eviction
        injection); calling ``ctx.update(var=handle)`` applies the
        loop-variable checkpoint rewrite to distributed updates.
        """
        self._enter_loop(name)
        ctx = LoopContext(self)
        try:
            yield ctx
        finally:
            ctx.finish()

    def _enter_loop(self, name: str) -> None:
        if (
            self.config.enable_eviction_injection
            and self._last_loop_name is not None
            and self._last_loop_name != name
            and self.gpu.memory.free_bytes_pooled > 0
        ):
            self.evict_gpu(100.0)
        self._last_loop_name = name

    def evict_gpu(self, percent: float = 100.0) -> int:
        """The ``evict`` instruction (§5.2): clean up GPU free pools."""
        self.stats.inc(EVICT_INSTRUCTIONS)
        if self.explain_collector is not None:
            self.explain_collector.note_evict(
                f"evict_gpu({percent:g}%) at t={self.clock.now(HOST):.6f}s"
            )
        return self.gpu.memory.empty_cache(percent / 100.0)

    @contextlib.contextmanager
    def block(self, name: str, execution_frequency: int = 1,
              reusable_fraction: float = 1.0):
        """Basic-block context applying automatic parameter tuning (§5.2).

        Sets the delay factor and Spark storage level for puts issued
        inside the block, from the block's execution frequency and the
        fraction of its operations that are loop-independent (reusable).
        """
        old_delay = self.delay_factor
        old_level = self.spark_mgr.storage_level
        if self.config.enable_auto_tuning and self.config.enable_delayed_caching:
            block = ProgramBlock(
                name,
                execution_frequency=execution_frequency,
                num_ops=100,
                num_loop_dependent_ops=int(
                    round((1.0 - reusable_fraction) * 100)
                ),
            )
            tuning = tune_block(block)
            self.delay_factor = tuning.delay_factor
            self.spark_mgr.storage_level = tuning.storage_level
        try:
            yield
        finally:
            self.delay_factor = old_delay
            self.spark_mgr.storage_level = old_level

    def checkpoint(self, handle: MatrixHandle) -> MatrixHandle:
        """Explicitly persist a (distributed) handle's RDD."""
        if handle.hop.kind == KIND_OP:
            self.evaluate([handle])
        dm = handle.payloads.get(BACKEND_SP)
        if dm is not None:
            self.stats.inc("compiler/checkpoints_placed")
            if not dm.rdd.is_persisted:
                dm.rdd.persist(self.spark_mgr.storage_level)
        return handle

    # ------------------------------------------------------------------ lineage API

    def lineage_of(self, handle: MatrixHandle) -> Optional[LineageItem]:
        """The lineage item of an evaluated handle (TRACE output)."""
        if handle.lineage is None and handle.hop.kind == KIND_OP:
            self.evaluate([handle])
        return handle.lineage

    def serialize_lineage(self, handle: MatrixHandle) -> str:
        """SERIALIZE: textual lineage log of a handle's trace (§3.1)."""
        item = self.lineage_of(handle)
        if item is None:
            raise RecomputationError("handle has no lineage to serialize")
        return serialize(item)

    def recompute(self, log: str,
                  inputs: Optional[dict[str, np.ndarray]] = None) -> np.ndarray:
        """RECOMPUTE: replay a serialized lineage log (§3.2).

        Rebuilds an expression DAG from the log and runs it through the
        full compilation chain, so the execution environment may differ
        from the one that produced the trace.  ``inputs`` supplies the
        named datasets referenced by ``data`` leaves.
        """
        root_item = deserialize(log)
        inputs = inputs or {}
        anchors: list[MatrixHandle] = []

        def read_dataset(dataset_name: str) -> Hop:
            if dataset_name not in inputs:
                raise RecomputationError(
                    f"recompute needs input dataset {dataset_name!r}"
                )
            handle = self.read(inputs[dataset_name], dataset_name)
            anchors.append(handle)
            return handle.hop

        root = hops_from_item(root_item, read_dataset)
        handle = MatrixHandle(self, root)
        return self.compute(handle)

    def recompute_from_lineage(self, item: LineageItem) -> Value:
        """Replay a live lineage trace to rebuild a lost value (§3.2).

        Fault-recovery entry point: when every cached copy of an
        intermediate has been lost (injected cache loss, GPU eviction
        under memory pressure, executor loss), the interpreter calls
        this to recompute the value from the session's registered input
        datasets.  Replays run through the full compilation chain, so
        still-cached sub-traces are reused rather than re-executed.
        """
        if item.opcode == "lit":
            return ScalarValue(float(item.data[0]))
        if item.opcode == "data":
            name = str(item.data[0])
            if name not in self._datasets:
                raise RecomputationError(
                    f"cannot recompute: dataset {name!r} is not registered"
                )
            data = self._datasets[name]
            return (ScalarValue(data) if isinstance(data, float)
                    else MatrixValue(data))
        anchors: list[MatrixHandle] = []

        def read_dataset(dataset_name: str) -> Hop:
            if dataset_name not in self._datasets:
                raise RecomputationError(
                    f"cannot recompute: dataset {dataset_name!r} is not "
                    f"registered with this session"
                )
            handle = self.read(self._datasets[dataset_name], dataset_name)
            anchors.append(handle)
            return handle.hop

        root = hops_from_item(item, read_dataset)
        handle = MatrixHandle(self, root)
        self.compute(handle)
        value = handle.payloads.get(BACKEND_CP)
        if value is None:
            raise RecomputationError(
                f"lineage replay of {item.opcode!r} produced no CP value"
            )
        return value

    # ------------------------------------------------------------------ reporting

    def explain(self, handles: Optional[Sequence[MatrixHandle]] = None,
                level: str = LEVEL_FULL) -> str:
        """EXPLAIN: render the compiled plan of a basic block (no execution).

        With ``handles`` (one or a sequence of pending handles), the
        block is compiled through the same rewrite + linearization
        pipeline :meth:`evaluate` uses — post-rewrite HOP DAG, placement
        decisions, linearized instruction stream with reuse/prefetch/
        checkpoint annotations, and per-hop cost estimates — without
        executing anything.  Hop ids in the dump match the ids
        ``repro.analysis`` diagnostics and trace spans reference.

        Without ``handles``, renders every plan captured so far (needs
        ``MemphisConfig(explain_capture=True)`` or an ambient
        :func:`repro.obs.explain.install_explain` scope).

        ``level`` is one of ``"hops"``, ``"runtime"``, ``"full"``.
        """
        if handles is not None:
            if isinstance(handles, MatrixHandle):
                handles = [handles]
            compiled = self._compile(list(handles))
            if compiled is None:
                return "(nothing to explain: no pending operator DAG)"
            _, root_hops, order, _extra = compiled
            plan = snapshot_plan(root_hops, order, self.config)
            diagnostics = None
            if self.ir_collector is not None:
                diagnostics = self.ir_collector.merged()
            rendered = render_plan(plan, level, diagnostics)
            if level != "hops":
                rendered += "\n\n" + self._explain_memory(root_hops, order)
            return rendered
        if self.explain_collector is None:
            return ("(explain capture is off: pass handles, or create the "
                    "session with MemphisConfig(explain_capture=True))")
        rendered = self.explain_collector.render(level)
        if level != "hops":
            rendered += "\n\n" + self._explain_memory(None, None)
        return rendered

    def _explain_memory(self, root_hops, order) -> str:
        """Static footprint table + observed region watermarks.

        The ``runtime``/``full`` explain levels append (a) the static
        memory plan of the block being explained (per-hop / per-region
        charges, ``repro.analysis.memplan``) and (b) the session's
        observed ``MemoryRegion.peak_used`` watermarks, so predicted
        vs observed peaks are comparable in one place.
        """
        sections: list[str] = []
        if root_hops is not None and order is not None:
            block_plan = plan_block(root_hops, order, self.config)
            plan_diagnostics(block_plan, self.config)
            sections.append(format_footprint_table(block_plan))
        observed = {
            snap["region"]: int(snap["peak_used"])
            for snap in self.arbiter.snapshot()
        }
        predicted = (self.memplanner.predicted
                     if self.memplanner is not None else None)
        budgets = (self.memplanner.budgets
                   if self.memplanner is not None else None)
        sections.append(
            "memory regions (observed peak watermarks"
            + (" vs session prediction" if self.memplanner is not None
               else "") + "):\n"
            + format_region_peaks(predicted, observed, budgets)
        )
        return "\n\n".join(sections)

    def elapsed(self) -> float:
        """Simulated end-to-end time (host timeline)."""
        return self.clock.now(HOST)

    def report(self) -> str:
        """Statistics report (SystemDS ``-stats`` style)."""
        return self.stats.report()

    def trace_events(self) -> list:
        """Structured trace events recorded so far (see ``repro.obs``).

        Empty unless the session was created with
        ``MemphisConfig(trace_enabled=True)`` or inside an ambient
        ``repro.obs.tracing()`` scope.
        """
        if self.trace_collector is not None:
            return [e for e in self.trace_collector.events()
                    if e.session == self.tracer.session_id]
        return []

    def export_trace(self, path: str) -> None:
        """Write this session's events as a Chrome/Perfetto trace file."""
        from repro.obs import export_chrome_trace

        export_chrome_trace(
            self.trace_events(),
            path,
            self.trace_collector.session_labels
            if self.trace_collector is not None else None,
        )


class LoopContext:
    """Runtime handle for one loop (checkpoint rewrite 2, §5.2)."""

    def __init__(self, session: Session) -> None:
        self.session = session
        self._previous: dict[str, MatrixHandle] = {}

    def update(self, **handles: MatrixHandle) -> None:
        """Declare loop-updated variables for the current iteration.

        Distributed updates are checkpointed (persist) so the next
        iteration's jobs do not lazily re-execute all previous iterations
        (Fig. 9(c)); the previous iteration's checkpoint of the same
        variable is unpersisted once superseded.
        """
        for name, handle in handles.items():
            if not should_checkpoint_loop_var(handle.shape,
                                              self.session.config):
                continue
            self.session.checkpoint(handle)
            prev = self._previous.get(name)
            if prev is not None and prev is not handle:
                dm = prev.payloads.get(BACKEND_SP)
                if dm is not None and dm.rdd.is_persisted:
                    dm.rdd.unpersist()
            self._previous[name] = handle

    def finish(self) -> None:
        """Loop exited; retained checkpoints stay for downstream reuse."""
        self._previous.clear()


def _release_ptr(memory, ptr) -> None:
    """weakref.finalize target: release a GPU pointer on handle GC."""
    if not ptr.freed:
        memory.release(ptr)
