"""Shared reuse substrate: cross-session cache, interner, and arbiter.

MEMPHIS's holistic reuse thesis only pays off at scale when *many*
pipelines share one lineage cache and one memory arbiter (ROADMAP
item 1; the stratum vision paper in PAPERS.md).  This module extracts
substrate ownership out of :class:`~repro.core.session.Session`:

* a :class:`Substrate` owns the :class:`~repro.memory.arbiter.MemoryArbiter`
  with the ``CP``/``DISK`` region ledgers, the
  :class:`~repro.core.cache.LineageCache`, and the
  :class:`~repro.lineage.item.LineageInterner`;
* a :class:`Session` takes one via injection.  The default is a
  *private* substrate built from the session's own stats/clock/tracer —
  exactly the object graph sessions constructed before this layer
  existed, so single-session behaviour is byte-identical;
* a *shared* substrate (``Substrate.shared()``) is attached by many
  sessions.  Each attachment yields a :class:`SessionContext` that
  namespaces lineage keys and enforces the tenant's fair share.

Namespacing rules (cross-session deduplication)
-----------------------------------------------

A lineage key is **globally shared** — one cache entry serves every
session — iff its DAG is pure under the determinism rules the static
verifier enforces (DET001–006, ``repro.analysis.dag_rules``):

* no ``rand``/``dropout`` anywhere in the DAG.  Seeded or not: an
  unseeded ``rand`` draws a session-local seed counter, so two sessions
  produce *identical* lineage for *different* data — sharing would
  return wrong results (DET001/DET002);
* no coarse-grained function items (``func:*``): their outputs
  reference session-bound payload keys;
* every ``data`` leaf names a registered dataset whose content
  fingerprint equals the substrate's canonical fingerprint for that
  name.  Two tenants reading different bytes under the same name never
  unify (and never produce false hits).

Everything else is wrapped in a per-session namespace item
(``ns:<uid>``), so seeded/impure/nondeterministic hops stay
session-scoped and report zero cross-session hits.

Payload safety: a cross-session hit is only served when the entry holds
a host-side copy (driver ``CP`` payload or a disk spill) — Spark RDD
handles and GPU pointers are bound to the owning session's backends.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.common.config import MemphisConfig
from repro.common.errors import AdmissionError
from repro.common.simclock import SimClock
from repro.common.stats import (
    SERVER_ADMITTED,
    SERVER_BACKPRESSURE,
    SERVER_CROSS_HITS,
    SERVER_DEDUP_BYTES,
    SERVER_QUOTA_REFUSALS,
    SERVER_SCOPED_KEYS,
    SERVER_SESSIONS,
    Stats,
)
from repro.core.cache import BACKEND_DISK, LineageCache
from repro.core.entry import BACKEND_CP, CacheEntry
from repro.lineage.item import (
    OP_DATA,
    OP_FUNCTION,
    OP_NAMESPACE,
    LineageInterner,
    LineageItem,
)
from repro.memory import REGION_CP, MemoryArbiter, shared_demands
from repro.obs.events import (
    EV_SERVER_ATTRIBUTION,
    EV_SERVER_BACKPRESSURE,
    EV_SERVER_CROSS_HIT,
)
from repro.obs.tracer import NULL_TRACER, current_collector

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import Session

#: opcodes whose results are not reproducible across sessions (the
#: DET001/DET002 families): any DAG containing one stays session-scoped.
IMPURE_OPCODES = frozenset({"rand", "dropout"})

#: opcode prefix of namespace wrapper items (canonical constant lives
#: with the other lineage opcodes in ``repro.lineage.item``).
NS_PREFIX = OP_NAMESPACE


def fingerprint(data: Union[np.ndarray, float, int]) -> str:
    """Content fingerprint of an input dataset (shape + bytes digest)."""
    if isinstance(data, (float, int)):
        return f"scalar:{float(data)!r}"
    arr = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
    digest = hashlib.sha1(arr.tobytes()).hexdigest()
    return f"{arr.shape}:{digest}"


class SessionContext:
    """One session's view of a shared :class:`Substrate`.

    Produced by :meth:`Substrate.attach`; carries the session uid used
    for key namespacing, the tenant the session's cache bytes are
    attributed to, and the session's dataset fingerprints.
    """

    __slots__ = ("substrate", "uid", "tenant", "fingerprints", "request")

    def __init__(self, substrate: "Substrate", uid: int,
                 tenant: str) -> None:
        self.substrate = substrate
        self.uid = uid
        self.tenant = tenant
        #: dataset name -> content fingerprint, as registered by *this*
        #: session's ``read()`` calls.
        self.fingerprints: dict[str, str] = {}
        #: active :class:`~repro.obs.request.RequestContext` (set by
        #: ``Session.bind_request``): stamps producer provenance onto
        #: cache entries and attribution events.  ``None`` outside a
        #: server request.
        self.request = None

    # -- key namespacing ----------------------------------------------------

    def namespaced(self, key: LineageItem) -> LineageItem:
        """The cache key for ``key``: itself (global) or a scoped wrapper."""
        sub = self.substrate
        if sub.shareable(self, key):
            return key
        return sub.scope_key(self.uid, key)

    # -- cross-session hit accounting --------------------------------------

    def usable(self, entry: CacheEntry) -> bool:
        """Whether this session may consume ``entry``'s payloads.

        Own entries always; another session's only through a host-side
        copy (CP payload or disk spill) — never its Spark/GPU handles.
        """
        if entry.owner is None or entry.owner == self.uid:
            return True
        return (BACKEND_CP in entry.payloads
                or BACKEND_DISK in entry.payloads)

    def note_hit(self, entry: CacheEntry) -> None:
        """Account a probe hit; cross-owner hits are deduplication wins.

        Every cross-owner hit is also *attributed*: the producer tenant
        recorded on the entry at put time is credited with ``entry.size``
        bytes and the entry's recompute cost (the Eq. 2 benefit the
        consumer avoided), aggregated into the substrate's per-tenant-pair
        benefit matrix and — when tracing — emitted as a
        ``server/attribution`` instant.
        """
        sub = self.substrate
        sub.note_tenant_event(self.tenant, "hits")
        owner = entry.owner
        if owner is None or owner == self.uid:
            return
        sub.stats.inc(SERVER_CROSS_HITS)
        sub.stats.inc(SERVER_DEDUP_BYTES, entry.size)
        producer = entry.tenant if entry.tenant is not None else "default"
        sub.note_attribution(producer, self.tenant, entry.size,
                             entry.compute_cost)
        if sub.tracer.enabled:
            sub.tracer.instant(EV_SERVER_CROSS_HIT, owner=owner,
                               key=entry.key.id, nbytes=entry.size)
            sub.tracer.instant(
                EV_SERVER_ATTRIBUTION, producer=producer,
                consumer=self.tenant, producer_request=entry.request,
                key=entry.key.id, nbytes=entry.size,
                cost_avoided=entry.compute_cost,
            )

    # -- admission (fair-share gate) ----------------------------------------

    def admit(self, demands: dict[str, int]) -> None:
        """Admission gate for one block's statically planned footprint.

        The shared-region subset of ``demands`` must pass (a) the
        tenant's quota and (b) a strict bulk reservation against the
        substrate arbiter (``reserve_plan(strict=True)``).  Refusals
        fire the region's pressure callbacks — a scheduler sees
        backpressure — and raise :class:`AdmissionError`.
        """
        sub = self.substrate
        shared = shared_demands(demands)
        cp_demand = shared.get(REGION_CP, 0)
        quota = sub.arbiter.region(REGION_CP).quota(self.tenant)
        if quota is not None and cp_demand > quota:
            sub.stats.inc(SERVER_QUOTA_REFUSALS)
            sub.note_tenant_event(self.tenant, "admission_refusals")
            self._backpressure(REGION_CP, cp_demand)
            raise AdmissionError(
                f"block CP demand {cp_demand} exceeds tenant "
                f"{self.tenant!r} quota {quota}",
                region=REGION_CP, tenant=self.tenant, demand=cp_demand,
            )
        reservation = sub.arbiter.reserve_plan(shared, strict=True)
        if reservation is None:
            sub.note_tenant_event(self.tenant, "admission_refusals")
            self._backpressure(REGION_CP, cp_demand)
            raise AdmissionError(
                f"shared substrate cannot admit block "
                f"(demands {shared}, tenant {self.tenant!r})",
                region=REGION_CP, tenant=self.tenant, demand=cp_demand,
            )
        # admitted: drop the bulk holds, execution charges for itself
        # (same commit semantics as the session-level reserve_plan).
        reservation.commit()
        sub.stats.inc(SERVER_ADMITTED)

    def _backpressure(self, region: str, nbytes: int) -> None:
        sub = self.substrate
        sub.stats.inc(SERVER_BACKPRESSURE)
        sub.note_tenant_event(self.tenant, "backpressure_events")
        sub.arbiter.notify_pressure(region, nbytes)
        if sub.tracer.enabled:
            sub.tracer.instant(EV_SERVER_BACKPRESSURE, tenant=self.tenant,
                               region=region, nbytes=nbytes)

    # -- tenant pinning ------------------------------------------------------

    def pin(self, key: LineageItem) -> bool:
        """Pin the entry under ``key``: never offered as a victim.

        Pinned bytes also count into the region's ``pinned`` ledger, so
        strict admission refuses blocks that could only fit by evicting
        them.  Returns ``False`` when the key has no CP-charged entry.
        """
        entry = self.substrate.cache._entries.get(self.namespaced(key))
        if entry is None or entry.pinned or not entry.cp_accounted:
            return False
        entry.pinned = True
        self.substrate.arbiter.pin(REGION_CP, entry.cp_accounted)
        return True

    def unpin(self, key: LineageItem) -> bool:
        entry = self.substrate.cache._entries.get(self.namespaced(key))
        if entry is None or not entry.pinned:
            return False
        entry.pinned = False
        self.substrate.arbiter.unpin(REGION_CP, entry.cp_accounted)
        return True

    # -- victim protection ---------------------------------------------------

    def evictable(self, entry: CacheEntry) -> bool:
        """Whether this session may evict ``entry`` under fair share.

        Own-tenant entries are always fair game; another tenant's are
        protected while that tenant is within its quota.  Tenants with
        no quota are unprotected (quotas *are* the protection).
        """
        tenant = entry.tenant
        if tenant is None or tenant == self.tenant:
            return True
        region = self.substrate.arbiter.region(REGION_CP)
        cap = region.quota(tenant)
        if cap is None:
            return True
        return region.tenant_usage(tenant) > cap


class Substrate:
    """Ownership root of the reuse substrate (cache + interner + arbiter).

    ``shared=False`` (the :class:`Session` default) reproduces the
    pre-refactor private object graph.  ``shared=True`` additionally
    maintains the tenant registry, the canonical dataset fingerprints,
    and the purity memo driving key namespacing.
    """

    def __init__(self, config: Optional[MemphisConfig] = None, *,
                 stats: Optional[Stats] = None, clock=None,
                 tracer=None, faults=None, shared: bool = False) -> None:
        self.config = config or MemphisConfig.memphis()
        self.shared = shared
        self.stats = stats if stats is not None else Stats()
        self.clock = clock if clock is not None else SimClock()
        if tracer is None and shared:
            # ambient-wins, like Session: a shared substrate created
            # under ``obs.tracing()`` (harness --trace, tests) traces
            # its cross-hit/backpressure/attribution events into the
            # collector instead of silently dropping them.  Private
            # substrates always receive the owning session's tracer.
            collector = current_collector()
            if collector is not None:
                tracer = collector.tracer(self.clock, label="substrate",
                                          stats=self.stats)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.arbiter = MemoryArbiter(
            self.stats, tracer=self.tracer, faults=faults
        )
        self.cache = LineageCache(
            self.config.cache, self.stats, clock=self.clock,
            disk_bytes_per_s=self.config.cpu.disk_bytes_per_s,
            flops_per_s=self.config.cpu.flops_per_s,
            tracer=self.tracer, faults=faults, arbiter=self.arbiter,
        )
        self.interner = LineageInterner()
        #: tenant name -> CP quota bytes (None = registered, no cap).
        self.tenants: dict[str, Optional[int]] = {}
        #: (producer tenant, consumer tenant) -> dedup benefit tallies
        #: (hits, bytes, Eq. 2 recompute cost avoided).  Fed by
        #: ``SessionContext.note_hit`` on every cross-session hit.
        self.attribution: dict[tuple[str, str], dict[str, float]] = {}
        #: tenant -> backpressure/admission-refusal/quota-refusal counts
        #: (the per-tenant split of the global ``server/`` counters).
        self.tenant_events: dict[str, dict[str, int]] = {}
        #: dataset name -> canonical (first-registered) fingerprint.
        self._canonical_fp: dict[str, str] = {}
        #: purity/shareability memo over lineage DAGs.  Keyed by the
        #: item itself (structural hash): structurally equal DAGs have
        #: equal purity and data-leaf names, and interning makes repeat
        #: lookups identity hits.
        self._dag_info: dict[LineageItem, tuple[bool, frozenset]] = {}
        self._next_uid = 1

    @classmethod
    def shared_substrate(cls, config: Optional[MemphisConfig] = None,
                         **kw) -> "Substrate":
        """A substrate meant to be attached by many sessions."""
        return cls(config, shared=True, **kw)

    # -- session attachment --------------------------------------------------

    def attach(self, session: "Session",
               tenant: Optional[str] = None) -> SessionContext:
        """Attach one session; returns its namespacing/tenancy context."""
        uid = self._next_uid
        self._next_uid += 1
        name = tenant if tenant is not None else "default"
        if name not in self.tenants:
            self.tenants[name] = None
        self.stats.inc(SERVER_SESSIONS)
        return SessionContext(self, uid, name)

    def activate(self, ctx: Optional[SessionContext]) -> None:
        """Make ``ctx`` the cache's active scope (scheduler interleave)."""
        self.cache._scope = ctx

    def set_quota(self, tenant: str, nbytes: Optional[int]) -> None:
        """Set a tenant's CP fair-share quota (None clears it)."""
        self.tenants[tenant] = nbytes
        self.arbiter.set_quota(REGION_CP, tenant, nbytes)

    # -- dataset fingerprints ------------------------------------------------

    def register_dataset(self, ctx: SessionContext, name: str,
                         data: Union[np.ndarray, float, int]) -> None:
        """Record a session's dataset content under ``name``.

        The first registration of a name fixes the canonical
        fingerprint; sessions whose content matches share ``data``-leaf
        lineage globally, all others stay session-scoped.
        """
        fp = fingerprint(data)
        ctx.fingerprints[name] = fp
        self._canonical_fp.setdefault(name, fp)

    # -- namespacing ---------------------------------------------------------

    def shareable(self, ctx: SessionContext, item: LineageItem) -> bool:
        """Whether ``item`` may live under the global namespace for ``ctx``."""
        pure, names = self._analyze(item)
        if not pure:
            return False
        canonical = self._canonical_fp
        fingerprints = ctx.fingerprints
        for name in names:
            fp = fingerprints.get(name)
            if fp is None or canonical.get(name) != fp:
                return False
        return True

    def scope_key(self, uid: int, key: LineageItem) -> LineageItem:
        """The session-scoped wrapper item for ``key`` (hash-consed)."""
        table = self.interner
        before = len(table)
        item = table.intern(f"{NS_PREFIX}:{uid}", (), (key,))
        if len(table) != before:
            self.stats.inc(SERVER_SCOPED_KEYS)
        return item

    def _analyze(self, item: LineageItem) -> tuple[bool, frozenset]:
        """(pure, data-leaf names) of ``item``'s DAG, memoized."""
        info = self._dag_info.get(item)
        if info is not None:
            return info
        pure = True
        names: list[str] = []
        for node in item.iter_dag():
            opcode = node.opcode
            if (opcode in IMPURE_OPCODES
                    or opcode.startswith(OP_FUNCTION)
                    or opcode.startswith(NS_PREFIX + ":")):
                pure = False
                break
            if opcode == OP_DATA and node.data:
                names.append(str(node.data[0]))
        info = (pure, frozenset(names))
        self._dag_info[item] = info
        return info

    # -- observability -------------------------------------------------------

    def note_attribution(self, producer: str, consumer: str,
                         nbytes: int, cost: float) -> None:
        """Credit one cross-session hit to its producer→consumer pair."""
        cell = self.attribution.get((producer, consumer))
        if cell is None:
            cell = self.attribution[(producer, consumer)] = {
                "hits": 0, "bytes": 0, "cost_avoided": 0.0,
            }
        cell["hits"] += 1
        cell["bytes"] += nbytes
        cell["cost_avoided"] += cost

    def note_tenant_event(self, tenant: str, kind: str) -> None:
        """Tally one per-tenant control-plane event (refusal class)."""
        events = self.tenant_events.get(tenant)
        if events is None:
            events = self.tenant_events[tenant] = {}
        events[kind] = events.get(kind, 0) + 1

    def attribution_matrix(self) -> list[dict]:
        """The producer→consumer benefit matrix, deterministically ordered.

        One record per tenant pair with at least one cross-session hit:
        who produced, who consumed, how many hits, how many bytes were
        deduplicated, and the summed recompute cost (Eq. 2's benefit
        term) the consumer avoided.
        """
        out = []
        for (producer, consumer) in sorted(self.attribution):
            cell = self.attribution[(producer, consumer)]
            out.append({
                "producer": producer,
                "consumer": consumer,
                "hits": int(cell["hits"]),
                "bytes": int(cell["bytes"]),
                "cost_avoided": float(cell["cost_avoided"]),
            })
        return out

    def tenant_occupancy(self) -> dict[str, dict[str, int]]:
        """Per-tenant CP usage/quota snapshot (``server/`` namespace)."""
        region = self.arbiter.region(REGION_CP)
        out: dict[str, dict[str, int]] = {}
        for tenant in sorted(self.tenants):
            out[tenant] = {
                "used": region.tenant_usage(tenant),
                "quota": self.tenants[tenant],
                "pinned_entries": sum(
                    1 for e in self.cache.entries()
                    if e.pinned and e.tenant == tenant
                ),
            }
        return out

    def metrics_gauges(self) -> dict[str, float]:
        """Gauge snapshot for the metrics sampler (shared mode only)."""
        out: dict[str, float] = {}
        region = self.arbiter.region(REGION_CP)
        for tenant in self.tenants:
            out[f"server/tenant/{tenant}/cp_used"] = float(
                region.tenant_usage(tenant)
            )
            headroom = region.quota_headroom(tenant)
            if headroom is not None:
                out[f"server/tenant/{tenant}/quota_headroom"] = \
                    float(headroom)
        dedup: dict[str, int] = {}
        for (producer, _), cell in self.attribution.items():
            dedup[producer] = dedup.get(producer, 0) + int(cell["bytes"])
        for tenant, nbytes in dedup.items():
            out[f"server/tenant/{tenant}/dedup_bytes_produced"] = \
                float(nbytes)
        out["server/sessions"] = float(self._next_uid - 1)
        return out


# ------------------------------------------------------------ ambient install

#: ambient shared substrate: ``Session(...)`` with no explicit substrate
#: attaches here when installed (harness --server, tests).  Same
#: module-global pattern as the ambient tracer/metrics/fault plan.
_AMBIENT: list[Substrate] = []


def install_substrate(substrate: Substrate) -> None:
    """Sessions constructed from now on attach to ``substrate``."""
    _AMBIENT.clear()
    _AMBIENT.append(substrate)


def current_substrate() -> Optional[Substrate]:
    return _AMBIENT[0] if _AMBIENT else None


def clear_ambient_substrate() -> None:
    """Uninstall the ambient substrate and its tenant registry."""
    if _AMBIENT:
        substrate = _AMBIENT[0]
        substrate.activate(None)
        substrate.tenants.clear()
        substrate.attribution.clear()
        substrate.tenant_events.clear()
    _AMBIENT.clear()
