"""Lineage cache entries: wrappers around backend-specific data objects.

An entry maps one lineage key to cached payloads, which may exist on
multiple backends at once (paper §3.3: "the wrappers enable caching the
same object in multiple backends").  Entries carry the metadata the
eviction policies consume — compute cost, worst-case size, reference
counters (#hits, #misses, #jobs), last access, and status.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.lineage.item import LineageItem

#: backend tags used throughout the cache.
BACKEND_CP = "CP"
BACKEND_SP = "SP"
BACKEND_GPU = "GPU"


class EntryStatus(enum.Enum):
    """Lifecycle of a cache entry (delayed caching, §5.2)."""

    TO_CACHE = "to_cache"  #: placeholder created; object not yet stored.
    CACHED = "cached"
    SPILLED = "spilled"  #: driver payload written to local disk (§3.3).
    EVICTED = "evicted"
    INVALID = "invalid"


class CacheEntry:
    """One lineage-keyed cache entry with multi-backend payloads."""

    __slots__ = (
        "key", "status", "payloads", "size", "compute_cost", "height",
        "hits", "misses", "jobs", "last_access", "seen_count",
        "is_function", "rdd_materialized", "outputs", "cp_accounted",
        "owner", "tenant", "request", "pinned",
    )

    def __init__(self, key: LineageItem, compute_cost: float = 0.0,
                 size: int = 0) -> None:
        self.key = key
        self.status = EntryStatus.TO_CACHE
        #: backend tag -> payload (Value / SparkEntryPayload / GpuData).
        self.payloads: dict[str, object] = {}
        self.size = size
        self.compute_cost = compute_cost
        self.height = key.height
        self.hits = 0
        self.misses = 0
        self.jobs = 0
        self.last_access = 0.0
        #: number of times this lineage was observed (drives delay factor).
        self.seen_count = 0
        self.is_function = key.is_function
        #: for Spark RDD payloads: whether the RDD is known materialized.
        self.rdd_materialized = False
        #: for function entries: the list of per-output payload keys.
        self.outputs: Optional[list] = None
        #: bytes this entry's CP payload has charged to the driver-cache
        #: budget.  ``size`` is the worst case across backends; eviction
        #: and invalidation must release exactly what was charged, or the
        #: budget drifts (CP copies attached as exchange ride-alongs are
        #: never charged).
        self.cp_accounted = 0
        #: shared-substrate provenance (``repro.server``): the session
        #: uid that first put this entry and the tenant its CP bytes are
        #: attributed to.  ``None`` on private (single-session) caches.
        self.owner: Optional[int] = None
        self.tenant: Optional[str] = None
        #: producer request id (``repro.obs.request``): which server
        #: request first put this entry — what cost-attribution events
        #: report as ``producer_request``.  ``None`` outside a request.
        self.request: Optional[str] = None
        #: tenant-pinned entries are never offered as eviction victims.
        self.pinned = False

    # -- payload management ----------------------------------------------------

    def put_payload(self, backend: str, payload: object, size: int,
                    cost: float) -> None:
        """Attach (or refresh) a backend-local payload."""
        self.payloads[backend] = payload
        self.size = max(self.size, size)
        self.compute_cost = max(self.compute_cost, cost)
        self.status = EntryStatus.CACHED

    def get_payload(self, backend: str) -> Optional[object]:
        return self.payloads.get(backend)

    def drop_payload(self, backend: str) -> None:
        """Remove one backend's copy; entry survives if others remain."""
        self.payloads.pop(backend, None)
        if not self.payloads:
            self.status = EntryStatus.EVICTED

    @property
    def backends(self) -> set[str]:
        return set(self.payloads)

    @property
    def is_cached(self) -> bool:
        return self.status is EntryStatus.CACHED and bool(self.payloads)

    @property
    def references(self) -> int:
        """Total references: ``r_h + r_m + r_j`` (Eq. 1 numerator)."""
        return self.hits + self.misses + self.jobs

    def __repr__(self) -> str:
        return (
            f"CacheEntry({self.key.opcode}, {self.status.value}, "
            f"backends={sorted(self.payloads)}, size={self.size}, "
            f"hits={self.hits})"
        )
