"""Cache eviction scoring policies.

The paper's default is the extended Cost&Size policy (Eq. 1)::

    argmin_o (r_h(o) + r_m(o) + r_j(o)) * c(o) / s(o)

i.e. evict first the object with the lowest (references x compute-cost /
size) — cheap-to-recompute, large, rarely referenced objects go first.
LRU, LRC (least reference count), and MRD (most reference distance) are
provided as ablation baselines from the related work (§7).
"""

from __future__ import annotations

from typing import Protocol

from repro.common.config import EvictionPolicyName
from repro.core.entry import CacheEntry


class EvictionPolicy(Protocol):
    """Score function: LOWER score = evicted earlier."""

    name: str

    def score(self, entry: CacheEntry, now: float) -> float:
        """Eviction priority of ``entry`` at logical time ``now``."""
        ...


class CostSizePolicy:
    """Paper Eq. 1: preserve high compute-cost-to-memory objects."""

    name = "cost_size"

    def score(self, entry: CacheEntry, now: float) -> float:
        refs = entry.hits + entry.misses + entry.jobs
        return (refs + 1) * entry.compute_cost / max(entry.size, 1)


class LruPolicy:
    """Classic least-recently-used."""

    name = "lru"

    def score(self, entry: CacheEntry, now: float) -> float:
        return entry.last_access


class LrcPolicy:
    """Least reference count (DAG-aware Spark baseline [127])."""

    name = "lrc"

    def score(self, entry: CacheEntry, now: float) -> float:
        return float(entry.hits + entry.jobs)


class MrdPolicy:
    """Most reference distance [99]: evict objects not referenced for the
    longest logical distance, weighted by reference count."""

    name = "mrd"

    def score(self, entry: CacheEntry, now: float) -> float:
        distance = max(now - entry.last_access, 0.0)
        return (entry.hits + 1.0) / (distance + 1.0)


def make_policy(name: EvictionPolicyName) -> EvictionPolicy:
    """Instantiate the policy selected in the configuration."""
    return {
        EvictionPolicyName.COST_SIZE: CostSizePolicy,
        EvictionPolicyName.LRU: LruPolicy,
        EvictionPolicyName.LRC: LrcPolicy,
        EvictionPolicyName.MRD: MrdPolicy,
    }[name]()
