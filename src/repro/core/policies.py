"""Cache eviction scoring policies: the single source of eviction order.

The paper's default is the extended Cost&Size policy (Eq. 1)::

    argmin_o (r_h(o) + r_m(o) + r_j(o)) * c(o) / s(o)

i.e. evict first the object with the lowest (references x compute-cost /
size) — cheap-to-recompute, large, rarely referenced objects go first.
LRU, LRC (least reference count), and MRD (most reference distance) are
provided as ablation baselines from the related work (§7).

Every policy exposes two scoring views over the same ordering idea:

* :meth:`score` over cache-entry-shaped objects (anything matching the
  :class:`~repro.memory.protocols.Evictable` field protocol — lineage
  entries, buffer-pool blocks, cached Spark partitions);
* :meth:`score_pointer` over GPU free-list pointers, where the default
  policy is the paper's Eq. 2 ``T_a(o) + 1/h(o) + c(o)`` with terms
  normalised by the device clock and the candidate set's max cost.

All four memory managers select victims through these policies via the
:class:`~repro.memory.arbiter.MemoryArbiter`; no eviction-scoring math
lives anywhere else.
"""

from __future__ import annotations

from typing import Protocol

from repro.common.config import EvictionPolicyName
from repro.core.entry import CacheEntry


class EvictionPolicy(Protocol):
    """Score function: LOWER score = evicted earlier."""

    name: str

    def score(self, entry: CacheEntry, now: float) -> float:
        """Eviction priority of ``entry`` at logical time ``now``."""
        ...

    def score_pointer(self, ptr, now: float, max_cost: float) -> float:
        """Eviction priority of a GPU free-list pointer (Eq. 2 view)."""
        ...


class CostSizePolicy:
    """Paper Eq. 1: preserve high compute-cost-to-memory objects."""

    name = "cost_size"

    def score(self, entry: CacheEntry, now: float) -> float:
        refs = entry.hits + entry.misses + entry.jobs
        return (refs + 1) * entry.compute_cost / max(entry.size, 1)

    def score_pointer(self, ptr, now: float, max_cost: float) -> float:
        """Eq. 2: ``T_a(o) + 1/h(o) + c(o)`` with normalized terms."""
        t_a = ptr.last_access / max(now, 1e-9)
        height_term = 1.0 / max(ptr.lineage_height, 1)
        cost_term = ptr.compute_cost / max(max_cost, 1e-9)
        return t_a + height_term + cost_term


class LruPolicy:
    """Classic least-recently-used."""

    name = "lru"

    def score(self, entry: CacheEntry, now: float) -> float:
        return entry.last_access

    def score_pointer(self, ptr, now: float, max_cost: float) -> float:
        return ptr.last_access


class LrcPolicy:
    """Least reference count (DAG-aware Spark baseline [127])."""

    name = "lrc"

    def score(self, entry: CacheEntry, now: float) -> float:
        return float(entry.hits + entry.jobs)

    def score_pointer(self, ptr, now: float, max_cost: float) -> float:
        return float(getattr(ptr, "hits", 0))


class MrdPolicy:
    """Most reference distance [99]: evict objects not referenced for the
    longest logical distance, weighted by reference count."""

    name = "mrd"

    def score(self, entry: CacheEntry, now: float) -> float:
        distance = max(now - entry.last_access, 0.0)
        return (entry.hits + 1.0) / (distance + 1.0)

    def score_pointer(self, ptr, now: float, max_cost: float) -> float:
        distance = max(now - ptr.last_access, 0.0)
        return (getattr(ptr, "hits", 0) + 1.0) / (distance + 1.0)


def make_policy(name: EvictionPolicyName) -> EvictionPolicy:
    """Instantiate the policy selected in the configuration."""
    return {
        EvictionPolicyName.COST_SIZE: CostSizePolicy,
        EvictionPolicyName.LRU: LruPolicy,
        EvictionPolicyName.LRC: LrcPolicy,
        EvictionPolicyName.MRD: MrdPolicy,
    }[name]()
