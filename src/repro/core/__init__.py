"""MEMPHIS core: hierarchical lineage cache, policies, session."""

from repro.core.cache import LineageCache
from repro.core.entry import (
    BACKEND_CP,
    BACKEND_GPU,
    BACKEND_SP,
    CacheEntry,
    EntryStatus,
)
from repro.core.policies import (
    CostSizePolicy,
    LrcPolicy,
    LruPolicy,
    MrdPolicy,
    make_policy,
)
from repro.core.session import LoopContext, Session
from repro.core.spark_cache import SparkCacheManager

__all__ = [
    "LineageCache",
    "CacheEntry",
    "EntryStatus",
    "BACKEND_CP",
    "BACKEND_SP",
    "BACKEND_GPU",
    "CostSizePolicy",
    "LruPolicy",
    "LrcPolicy",
    "MrdPolicy",
    "make_policy",
    "Session",
    "LoopContext",
    "SparkCacheManager",
]
