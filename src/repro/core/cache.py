"""The hierarchical multi-backend lineage cache (paper §3.3, Fig. 3).

A hash map from lineage items to :class:`CacheEntry` objects whose
payloads live in backend-local stores: in-memory matrices in the driver
(budgeted by the driver cache size), distributed RDD handles (budgeted
against Spark storage memory by the :class:`SparkCacheManager`), and GPU
pointers (owned by the GPU unified memory manager, which calls back on
recycling).  The cache implements the system-internal API of §3.1:
``probe/reuse``, ``put``, and ``make_space``, plus delayed caching
(§5.2).

Byte accounting and victim selection are delegated to the shared
:class:`~repro.memory.arbiter.MemoryArbiter`: the driver tier is the
``CP`` region, spilled binaries live in the ``DISK`` region, and the
spill-vs-drop break-even (§3.3) is the arbiter's spill model.  The
cache keeps only the physics — payload movement, simulated disk I/O
time, and lineage bookkeeping.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.config import CacheConfig
from repro.common.stats import (
    CACHE_DELAYED,
    CACHE_EVICTIONS,
    CACHE_HITS,
    CACHE_MISSES,
    CACHE_PUTS,
    CACHE_RESTORES,
    CACHE_SPILLS,
    LINEAGE_PROBES,
    Stats,
)
from repro.core.entry import BACKEND_CP, BACKEND_GPU, BACKEND_SP, CacheEntry, EntryStatus
from repro.core.policies import EvictionPolicy, make_policy
from repro.lineage.item import LineageItem
from repro.memory import REGION_CP, REGION_DISK, MemoryArbiter
from repro.obs.events import (
    EV_CACHE_DELAY,
    EV_CACHE_EVICT,
    EV_CACHE_PUT,
    EV_CACHE_RESTORE,
    EV_CACHE_SPILL,
    EV_PROBE,
)
from repro.obs.tracer import NULL_TRACER


#: payload tag for driver-local entries spilled to disk.
BACKEND_DISK = "DISK"


class LineageCache:
    """Unified lineage-keyed cache across CP, Spark, GPU, and local disk.

    When a ``clock`` is provided, evicted driver entries whose compute
    cost exceeds the disk round-trip cost are *spilled* to a simulated
    local disk instead of dropped ("disk-evicted binaries", §3.3); a
    later probe restores them, charging the read.
    """

    def __init__(self, config: CacheConfig, stats: Stats,
                 policy: Optional[EvictionPolicy] = None,
                 clock=None,
                 disk_bytes_per_s: float = 1024**3,
                 flops_per_s: float = 1.5e12,
                 tracer=None, faults=None, arbiter=None) -> None:
        self.config = config
        self.stats = stats
        self.policy = policy or make_policy(config.policy)
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if arbiter is None:
            arbiter = MemoryArbiter(stats, tracer=self.tracer, faults=faults)
        self.arbiter: MemoryArbiter = arbiter
        self.faults = faults if faults is not None else arbiter.faults
        self.disk_bytes_per_s = disk_bytes_per_s
        self.flops_per_s = flops_per_s
        self._cp_region = arbiter.add_region(
            REGION_CP, config.driver_cache_bytes,
            policy=self.policy, unlimited=config.unlimited,
        )
        self._disk_region = arbiter.add_region(
            REGION_DISK, config.disk_cache_bytes,
        )
        arbiter.configure_spill(
            REGION_CP,
            enabled=config.spill_to_disk and clock is not None,
            disk_region=REGION_DISK,
            bytes_per_s=disk_bytes_per_s,
            flops_per_s=flops_per_s,
        )
        arbiter.register_residency(REGION_CP, self.has_host_copy_for)
        self._entries: dict[LineageItem, CacheEntry] = {}
        self._logical_time = 0
        #: GPU pointer id -> entry, for invalidation callbacks.
        self._gpu_index: dict[int, CacheEntry] = {}
        #: hook invoked when a CP payload is evicted (e.g. for disk spill).
        self.on_cp_evict: Optional[Callable[[CacheEntry], None]] = None
        #: per-put delay factor override (set per block by auto-tuning).
        self.delay_factor = config.delay_factor
        #: active session scope on a *shared* cache (``repro.server``):
        #: a ``SessionContext`` namespacing keys and enforcing tenant
        #: fair share.  ``None`` on private caches — the hot path then
        #: pays exactly one attribute check per probe/put.
        self._scope = None

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def cp_bytes(self) -> int:
        """Bytes held by driver-local (CP) payloads."""
        return self._cp_region.used

    def entries(self) -> list[CacheEntry]:
        return list(self._entries.values())

    def metrics_gauges(self) -> dict[str, float]:
        """Gauge snapshot for the metrics sampler (``repro.obs.metrics``)."""
        return {
            "cache/entries": float(len(self._entries)),
            "cache/cp_bytes": float(self.cp_bytes),
            "cache/disk_bytes": float(self.disk_bytes),
        }

    def get_entry(self, key: LineageItem) -> Optional[CacheEntry]:
        """Raw entry lookup without hit/miss accounting."""
        scope = self._scope
        if scope is not None:
            key = scope.namespaced(key)
        return self._entries.get(key)

    # -- core API (paper §3.1) --------------------------------------------------

    def probe(self, key: LineageItem) -> Optional[CacheEntry]:
        """REUSE probe: returns the entry on a hit, ``None`` otherwise.

        A hit requires a CACHED entry; placeholders (delayed caching) and
        evicted entries count as misses but update reference metadata used
        by the eviction policy.
        """
        scope = self._scope
        if scope is not None:
            key = scope.namespaced(key)
        self._logical_time += 1
        self.stats.inc(LINEAGE_PROBES)
        if scope is not None:
            # per-tenant probe tally feeds the server SLO hit-rate rows
            scope.substrate.note_tenant_event(scope.tenant, "probes")
        entry = self._entries.get(key)
        if entry is None:
            self.stats.inc(CACHE_MISSES)
            self._trace_probe(key, hit=False)
            return None
        entry.last_access = self._logical_time
        if scope is not None and not scope.usable(entry):
            # another session's entry without a host-side copy: its
            # Spark/GPU payloads are bound to the owner's backends
            entry.misses += 1
            self.stats.inc(CACHE_MISSES)
            self._trace_probe(key, hit=False)
            return None
        if entry.is_cached:
            entry.hits += 1
            self.stats.inc(CACHE_HITS)
            if scope is not None:
                scope.note_hit(entry)
            self._trace_probe(key, hit=True)
            return entry
        if entry.status is EntryStatus.SPILLED \
                and BACKEND_DISK in entry.payloads:
            restored = self._restore_from_disk(entry)
            if restored:
                entry.hits += 1
                self.stats.inc(CACHE_HITS)
                if scope is not None:
                    scope.note_hit(entry)
                self._trace_probe(key, hit=True, restored=True)
                return entry
        entry.misses += 1
        self.stats.inc(CACHE_MISSES)
        self._trace_probe(key, hit=False)
        return None

    def _trace_probe(self, key: LineageItem, hit: bool, **extra) -> None:
        if self.tracer.enabled:
            self.tracer.instant(EV_PROBE, hit=hit, opcode=key.opcode,
                                key=key.id, **extra)

    def put(self, key: LineageItem, payload: object, backend: str,
            size: int, compute_cost: float,
            delay_factor: Optional[int] = None) -> Optional[CacheEntry]:
        """PUT: store an instruction result under its lineage key.

        With delay factor *n* > 1, the first *n - 1* puts only create or
        bump an empty TO-BE-CACHED placeholder; the n-th put stores the
        actual object (paper §5.2, implemented as the arbiter's region
        admission policy).  Returns the entry when the payload was
        actually cached, else ``None``.
        """
        scope = self._scope
        if scope is not None:
            key = scope.namespaced(key)
        now = self._logical_time = self._logical_time + 1
        n = self.delay_factor if delay_factor is None else delay_factor
        entries = self._entries
        entry = entries.get(key)
        if entry is None:
            entry = CacheEntry(key, compute_cost, size)
            if scope is not None:
                entry.owner = scope.uid
                entry.tenant = scope.tenant
                request = scope.request
                if request is not None:
                    entry.request = request.request_id
            entries[key] = entry
        entry.seen_count += 1
        entry.last_access = now
        if not self.arbiter.admit(REGION_CP, entry.seen_count, n):
            self.stats.inc(CACHE_DELAYED)
            if self.tracer.enabled:
                self.tracer.instant(EV_CACHE_DELAY, opcode=key.opcode,
                                    key=key.id, seen=entry.seen_count)
            return None
        if backend == BACKEND_CP:
            if entry.cp_accounted:  # re-put: release the old charge first
                self._release_cp(entry)
            if scope is not None \
                    and not self._fit_tenant_quota(entry, size):
                return None
            if not self.arbiter.reserve(
                REGION_CP, size, candidates=self._cp_candidates,
                evict=self.evict_cp, now=self._logical_time,
            ):
                return None
            self.arbiter.commit(REGION_CP, size)
            entry.cp_accounted = size
            if entry.tenant is not None:
                self.arbiter.charge_tenant(REGION_CP, entry.tenant, size)
        entry.put_payload(backend, payload, size, compute_cost)
        if backend == BACKEND_GPU:
            ptr = getattr(payload, "ptr", None)
            if ptr is not None:
                self._gpu_index[ptr.id] = entry
                ptr.cached = True
        self.stats.inc(CACHE_PUTS)
        if self.tracer.enabled:
            self.tracer.instant(EV_CACHE_PUT, backend=backend, size=size,
                                opcode=key.opcode, key=key.id)
        return entry

    def make_space(self, backend: str, size: int) -> bool:
        """MAKE_SPACE: evict until ``size`` bytes fit on ``backend``."""
        if backend == BACKEND_CP:
            return self._make_space_cp(size)
        # SP space is managed by the SparkCacheManager; GPU space by the
        # unified GPU memory manager (Algorithm 1).
        return True

    # -- eviction -----------------------------------------------------------------

    def _make_space_cp(self, size: int) -> bool:
        return self.arbiter.ensure_space(
            REGION_CP, size, candidates=self._cp_candidates,
            evict=self.evict_cp, now=self._logical_time,
        )

    def _cp_candidates(self) -> list[CacheEntry]:
        scope = self._scope
        if scope is None:
            return [
                e for e in self._entries.values()
                if BACKEND_CP in e.payloads and e.is_cached
            ]
        # fair-share victim filter: pinned entries are never victims,
        # and another tenant's entries are protected while that tenant
        # is within its quota
        return [
            e for e in self._entries.values()
            if BACKEND_CP in e.payloads and e.is_cached
            and not e.pinned and scope.evictable(e)
        ]

    def _release_cp(self, entry: CacheEntry) -> None:
        """Release the entry's CP charge (+ tenant ledger and pin)."""
        nbytes = entry.cp_accounted
        if not nbytes:
            return
        self.arbiter.release(REGION_CP, nbytes)
        entry.cp_accounted = 0
        if entry.tenant is not None:
            self.arbiter.charge_tenant(REGION_CP, entry.tenant, -nbytes)
        if entry.pinned:
            self.arbiter.unpin(REGION_CP, nbytes)
            entry.pinned = False

    def _fit_tenant_quota(self, entry: CacheEntry, size: int) -> bool:
        """Make ``size`` bytes fit under the entry tenant's quota.

        Shrinks the tenant's *own* unpinned CP entries first; when the
        quota still cannot take the bytes, the put is refused — a tenant
        never caches past its fair share.
        """
        tenant = entry.tenant
        if tenant is None:
            return True
        headroom = self.arbiter.quota_headroom(REGION_CP, tenant)
        if headroom is None or size <= headroom:
            return True
        while True:
            own = [
                e for e in self._entries.values()
                if e.tenant == tenant and e is not entry
                and BACKEND_CP in e.payloads and e.is_cached
                and not e.pinned
            ]
            victim = self.arbiter.select_victim(
                REGION_CP, own, now=self._logical_time
            )
            if victim is None:
                break
            self.evict_cp(victim)
            headroom = self.arbiter.quota_headroom(REGION_CP, tenant)
            if headroom is None or size <= headroom:
                return True
        from repro.common.stats import SERVER_QUOTA_REFUSALS

        self.stats.inc(SERVER_QUOTA_REFUSALS)
        scope = self._scope
        if scope is not None:
            scope.substrate.note_tenant_event(tenant, "quota_refusals")
        return False

    def _cp_victim(self) -> Optional[CacheEntry]:
        return self.arbiter.select_victim(
            REGION_CP, self._cp_candidates(), now=self._logical_time
        )

    def evict_cp(self, entry: CacheEntry) -> None:
        """Evict the driver-local payload of ``entry``.

        High compute-cost entries are spilled to local disk (restorable
        by a later probe); cheap-to-recompute ones are dropped outright.
        The spill-vs-drop break-even is the arbiter's decision
        (:meth:`~repro.memory.arbiter.MemoryArbiter.should_spill`).
        """
        payload = entry.payloads.get(BACKEND_CP)
        if payload is None:
            return
        if self.on_cp_evict is not None:
            self.on_cp_evict(entry)
        self._release_cp(entry)
        if self.arbiter.should_spill(REGION_CP, entry.size,
                                     entry.compute_cost) \
                and not self._spill_faulted(entry):
            self.clock.advance(entry.size / self.disk_bytes_per_s)
            entry.payloads[BACKEND_DISK] = payload
            entry.payloads.pop(BACKEND_CP, None)
            entry.status = EntryStatus.SPILLED
            self.arbiter.acquire(REGION_DISK, entry.size)
            self.stats.inc(CACHE_SPILLS)
            self.arbiter.record_spill(REGION_CP, entry.size,
                                      key=entry.key.id)
            if self.tracer.enabled:
                self.tracer.instant(EV_CACHE_SPILL, size=entry.size,
                                    opcode=entry.key.opcode,
                                    key=entry.key.id)
        else:
            entry.drop_payload(BACKEND_CP)
        self.stats.inc(CACHE_EVICTIONS)
        self.arbiter.record_evict(REGION_CP, entry.size, key=entry.key.id)
        if self.tracer.enabled:
            self.tracer.instant(EV_CACHE_EVICT, backend=BACKEND_CP,
                                size=entry.size, opcode=entry.key.opcode,
                                key=entry.key.id)

    def _should_spill(self, entry: CacheEntry) -> bool:
        """Spill only when recomputation costs more than a disk round trip."""
        return self.arbiter.should_spill(REGION_CP, entry.size,
                                         entry.compute_cost)

    def _spill_faulted(self, entry: CacheEntry) -> bool:
        """Injected spill-I/O error: the write fails, the payload is lost.

        The entry degrades to a plain eviction (recoverable through
        lineage recomputation), never a silently corrupt disk copy.
        """
        return self.arbiter.spill_fault(key=entry.key.id,
                                        opcode=entry.key.opcode,
                                        nbytes=entry.size)

    def _restore_from_disk(self, entry: CacheEntry) -> bool:
        """Read a spilled payload back into the driver cache."""
        payload = entry.payloads.get(BACKEND_DISK)
        if payload is None:
            return False
        if not self.arbiter.reserve(
            REGION_CP, entry.size, candidates=self._cp_candidates,
            evict=self.evict_cp, now=self._logical_time,
        ):
            return False
        if self.arbiter.restore_fault(key=entry.key.id,
                                      opcode=entry.key.opcode,
                                      nbytes=entry.size):
            # injected read error: the disk copy is unusable and dropped;
            # the caller falls back to lineage recomputation
            self.arbiter.cancel(REGION_CP, entry.size)
            self.arbiter.release(REGION_DISK, entry.size)
            entry.drop_payload(BACKEND_DISK)
            if entry.payloads:
                entry.status = EntryStatus.CACHED
            return False
        self.clock.advance(entry.size / self.disk_bytes_per_s)
        entry.payloads[BACKEND_CP] = payload
        entry.payloads.pop(BACKEND_DISK, None)
        entry.status = EntryStatus.CACHED
        self.arbiter.release(REGION_DISK, entry.size)
        self.arbiter.commit(REGION_CP, entry.size)
        entry.cp_accounted = entry.size
        if entry.tenant is not None:
            self.arbiter.charge_tenant(REGION_CP, entry.tenant, entry.size)
        self.stats.inc(CACHE_RESTORES)
        self.arbiter.record_restore(REGION_CP, entry.size,
                                    key=entry.key.id)
        if self.tracer.enabled:
            self.tracer.instant(EV_CACHE_RESTORE, size=entry.size,
                                opcode=entry.key.opcode, key=entry.key.id)
        return True

    @property
    def disk_bytes(self) -> int:
        """Bytes held by spilled (disk-resident) entries."""
        return self._disk_region.used

    def drop_backend_payload(self, entry: CacheEntry, backend: str) -> None:
        """Remove one backend copy (e.g. after unpersist), keep others."""
        if backend == BACKEND_CP and BACKEND_CP in entry.payloads:
            self.evict_cp(entry)
            return
        entry.drop_payload(backend)
        self.stats.inc(CACHE_EVICTIONS)
        if self.tracer.enabled:
            self.tracer.instant(EV_CACHE_EVICT, backend=backend,
                                size=entry.size, opcode=entry.key.opcode,
                                key=entry.key.id)

    def invalidate_entry(self, entry: CacheEntry,
                         spark_mgr=None) -> list[str]:
        """Hard-drop every backend copy of ``entry`` (fault injection).

        Models losing a cached intermediate outright — driver copy, disk
        spill, distributed RDD (via the Spark cache manager when given,
        so storage-memory accounting stays exact), and GPU pointer index
        entry.  Returns the backend tags that were dropped; the value
        remains recoverable only through lineage recomputation.
        """
        dropped: list[str] = []
        if BACKEND_CP in entry.payloads:
            self._release_cp(entry)
            entry.drop_payload(BACKEND_CP)
            dropped.append(BACKEND_CP)
        if BACKEND_DISK in entry.payloads:
            self.arbiter.release(REGION_DISK, entry.size)
            entry.drop_payload(BACKEND_DISK)
            dropped.append(BACKEND_DISK)
        if BACKEND_SP in entry.payloads:
            if spark_mgr is not None:
                spark_mgr.evict(entry)
            else:
                entry.drop_payload(BACKEND_SP)
            dropped.append(BACKEND_SP)
        if BACKEND_GPU in entry.payloads:
            payload = entry.payloads[BACKEND_GPU]
            ptr = getattr(payload, "ptr", None)
            if ptr is not None:
                ptr.cached = False
                self._gpu_index.pop(ptr.id, None)
            entry.drop_payload(BACKEND_GPU)
            dropped.append(BACKEND_GPU)
        if dropped:
            entry.status = EntryStatus.EVICTED
            self.stats.inc(CACHE_EVICTIONS)
            if self.tracer.enabled:
                self.tracer.instant(EV_CACHE_EVICT, backend=",".join(dropped),
                                    size=entry.size,
                                    opcode=entry.key.opcode,
                                    key=entry.key.id)
        return dropped

    # -- GPU integration ---------------------------------------------------------

    def has_host_copy_for(self, ptr) -> bool:
        """Residency probe: does the entry backed by GPU pointer ``ptr``
        also hold a host-side (driver or disk) copy?

        Registered with the arbiter as the ``CP`` region's residency
        probe, so the GPU memory manager can skip a D2H save when the
        value already survives on the host (holistic eviction).
        """
        ptr_id = getattr(ptr, "id", None)
        if ptr_id is None:
            return False
        entry = self._gpu_index.get(ptr_id)
        if entry is None:
            return False
        return BACKEND_CP in entry.payloads or BACKEND_DISK in entry.payloads

    def on_gpu_invalidate(self, ptr) -> None:
        """Callback from the GPU memory manager before a pointer is
        recycled/freed: the entry backed by it loses its GPU payload."""
        ptr.cached = False
        entry = self._gpu_index.pop(ptr.id, None)
        if entry is not None:
            entry.drop_payload(BACKEND_GPU)
            self.stats.inc(CACHE_EVICTIONS)
            if self.tracer.enabled:
                self.tracer.instant(EV_CACHE_EVICT, backend=BACKEND_GPU,
                                    size=entry.size,
                                    opcode=entry.key.opcode,
                                    key=entry.key.id)

    # -- maintenance ---------------------------------------------------------------

    def remove(self, key: LineageItem) -> None:
        scope = self._scope
        if scope is not None:
            key = scope.namespaced(key)
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._release_cp(entry)

    def clear(self) -> None:
        self._entries.clear()
        self._gpu_index.clear()
        self._cp_region.reset()

    def cached_count(self, backend: Optional[str] = None) -> int:
        """Number of CACHED entries, optionally restricted to a backend."""
        return sum(
            1 for e in self._entries.values()
            if e.is_cached and (backend is None or backend in e.payloads)
        )
