"""Deterministic multi-session scheduler for the shared substrate.

The driver loop of the reuse server: requests are submitted per tenant,
each gets its own :class:`~repro.core.session.Session` attached to the
shared :class:`~repro.core.substrate.Substrate`, and a seeded
``random.Random`` interleave decides which request advances at every
scheduler step — many logical sessions, one deterministic execution
order for a given seed.

Programs are plain callables ``program(session) -> result``.  A program
that wants to be *interleaved* mid-flight returns a generator instead:
every ``yield`` is a scheduling point, and the generator's ``return``
value becomes the request's result.  A program that returns a plain
value simply runs to completion in one step.

Admission refusals (:class:`~repro.common.errors.AdmissionError`, the
strict quota/occupancy gate in ``Session.evaluate``) are backpressure,
not failures: the scheduler restarts the request's program on the same
session — reuse makes the replay cheap — up to ``max_retries`` times
before marking it failed.
"""

from __future__ import annotations

import random
from types import GeneratorType
from typing import Callable, Optional

from repro.common.config import MemphisConfig
from repro.common.errors import AdmissionError
from repro.common.stats import (
    SERVER_REQUESTS,
    SERVER_STEPS,
    Stats,
)
from repro.core.session import Session
from repro.core.substrate import Substrate
from repro.obs.events import EV_SERVER_STEP


class Request:
    """One submitted unit of work: a tenant and a program."""

    __slots__ = ("tenant", "name", "program")

    def __init__(self, tenant: str, program: Callable,
                 name: str) -> None:
        self.tenant = tenant
        self.program = program
        self.name = name


class RequestResult:
    """Outcome of one request after the scheduler drained it."""

    __slots__ = ("name", "tenant", "ok", "value", "error", "steps",
                 "retries")

    def __init__(self, name: str, tenant: str) -> None:
        self.name = name
        self.tenant = tenant
        self.ok = False
        self.value = None
        self.error: Optional[str] = None
        self.steps = 0
        self.retries = 0

    def as_record(self) -> dict:
        return {
            "name": self.name,
            "tenant": self.tenant,
            "ok": self.ok,
            "error": self.error,
            "steps": self.steps,
            "retries": self.retries,
        }


class _Task:
    """Scheduler-internal live state of one request."""

    __slots__ = ("request", "session", "gen", "result")

    def __init__(self, request: Request, session: Session) -> None:
        self.request = request
        self.session = session
        self.gen: Optional[GeneratorType] = None
        self.result = RequestResult(request.name, request.tenant)


class ServerReport:
    """Aggregated outcome of one :meth:`Scheduler.run`."""

    def __init__(self, substrate: Substrate,
                 results: list[RequestResult],
                 sessions: list[Session]) -> None:
        self.results = results
        #: substrate-level counters (cache + server namespaces).
        self.substrate_counters = substrate.stats.counters()
        #: per-tenant CP occupancy/quota snapshot.
        self.tenants = substrate.tenant_occupancy()
        #: merged counters across the substrate and every session.
        merged = Stats().merge(substrate.stats)
        for session in sessions:
            merged.merge(session.stats)
        self.merged = merged

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def counter(self, name: str) -> int:
        return self.merged.get(name)

    def server_counter(self, name: str) -> int:
        return self.substrate_counters.get(name, 0)

    def as_record(self) -> dict:
        """Deterministic JSON-friendly snapshot (smoke/CI comparisons)."""
        return {
            "ok": self.ok,
            "requests": [r.as_record() for r in self.results],
            "server": {
                name: count
                for name, count in sorted(self.substrate_counters.items())
                if name.startswith("server/")
                or name.startswith("cache/")
            },
            "tenants": self.tenants,
        }

    def format(self) -> str:
        lines = ["=== server report ==="]
        for r in self.results:
            status = "ok" if r.ok else f"FAILED ({r.error})"
            lines.append(
                f"  {r.name:<12s} tenant={r.tenant:<8s} "
                f"steps={r.steps:<4d} retries={r.retries} {status}"
            )
        for name in ("server/sessions_attached",
                     "server/cross_session_hits",
                     "server/dedup_bytes_saved",
                     "server/blocks_admitted",
                     "server/backpressure_events",
                     "server/quota_refusals"):
            lines.append(f"  {name:<32s} {self.server_counter(name):>12d}")
        for tenant, occ in self.tenants.items():
            quota = occ["quota"] if occ["quota"] is not None else "-"
            lines.append(
                f"  tenant {tenant:<8s} cp_used={occ['used']:<12d} "
                f"quota={quota} pinned_entries={occ['pinned_entries']}"
            )
        return "\n".join(lines)


class Scheduler:
    """Run many sessions against one shared substrate, deterministically.

    ``seed`` fixes the interleave: every scheduler step draws the next
    runnable request from a ``random.Random(seed)``, so two runs with
    the same seed and submissions execute identically (same hit/miss
    sequence, same counters, same results).
    """

    def __init__(self, substrate: Optional[Substrate] = None, *,
                 config: Optional[MemphisConfig] = None,
                 config_factory: Optional[Callable[[], MemphisConfig]] = None,
                 seed: int = 0, max_retries: int = 8) -> None:
        self.config = config or MemphisConfig.server_session()
        self.substrate = substrate if substrate is not None \
            else Substrate.shared_substrate(self.config)
        #: fresh per-session config (auto-tuning mutates per-session
        #: knobs, so sessions must not alias one config object).
        self._config_factory = config_factory or MemphisConfig.server_session
        self.seed = seed
        self.max_retries = max_retries
        self._requests: list[Request] = []
        self.sessions: list[Session] = []

    # -- submission ----------------------------------------------------------

    def add_tenant(self, name: str,
                   cp_quota: Optional[int] = None) -> None:
        """Register a tenant (optionally with a CP fair-share quota)."""
        self.substrate.set_quota(name, cp_quota)

    def submit(self, tenant: str, program: Callable,
               name: Optional[str] = None) -> Request:
        """Queue ``program`` to run as ``tenant``; returns the request."""
        request = Request(
            tenant, program,
            name if name is not None else f"r{len(self._requests)}",
        )
        self._requests.append(request)
        self.substrate.stats.inc(SERVER_REQUESTS)
        return request

    # -- driver loop ---------------------------------------------------------

    def run(self) -> ServerReport:
        """Drain the request queue; returns the aggregated report."""
        rng = random.Random(self.seed)
        tasks = []
        for request in self._requests:
            # sessions attach in submit order, so uids — and therefore
            # key namespaces — are deterministic
            session = Session(
                self._config_factory(), substrate=self.substrate,
                tenant=request.tenant,
            )
            self.sessions.append(session)
            tasks.append(_Task(request, session))
        self._requests = []
        active = list(tasks)
        while active:
            index = rng.randrange(len(active)) if len(active) > 1 else 0
            if self._step(active[index]):
                active.pop(index)
        self.substrate.activate(None)
        return ServerReport(self.substrate, [t.result for t in tasks],
                            self.sessions)

    def _step(self, task: _Task) -> bool:
        """Advance one request by one scheduling quantum; True = done."""
        substrate = self.substrate
        substrate.stats.inc(SERVER_STEPS)
        task.result.steps += 1
        substrate.activate(task.session._ctx)
        if substrate.tracer.enabled:
            substrate.tracer.instant(
                EV_SERVER_STEP, tenant=task.request.tenant,
                request=task.request.name, step=task.result.steps,
            )
        try:
            if task.gen is None:
                out = task.request.program(task.session)
                if isinstance(out, GeneratorType):
                    task.gen = out
                    return False
                task.result.value = out
                task.result.ok = True
                return True
            next(task.gen)
            return False
        except StopIteration as stop:
            task.result.value = stop.value
            task.result.ok = True
            return True
        except AdmissionError as exc:
            # backpressure: the generator (if any) died with the raise,
            # so restart the program on the same session — reuse makes
            # the replay cheap — until the retry budget runs out
            task.gen = None
            task.result.retries += 1
            if task.result.retries > self.max_retries:
                task.result.error = f"admission refused: {exc}"
                return True
            return False
        except Exception as exc:  # noqa: BLE001 - fault isolation
            # one tenant's failure must not take the server down
            task.result.error = f"{type(exc).__name__}: {exc}"
            return True
