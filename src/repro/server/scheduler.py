"""Deterministic multi-session scheduler for the shared substrate.

The driver loop of the reuse server: requests are submitted per tenant,
each gets its own :class:`~repro.core.session.Session` attached to the
shared :class:`~repro.core.substrate.Substrate`, and a seeded
``random.Random`` interleave decides which request advances at every
scheduler step — many logical sessions, one deterministic execution
order for a given seed.

Programs are plain callables ``program(session) -> result``.  A program
that wants to be *interleaved* mid-flight returns a generator instead:
every ``yield`` is a scheduling point, and the generator's ``return``
value becomes the request's result.  A program that returns a plain
value simply runs to completion in one step.

Admission refusals (:class:`~repro.common.errors.AdmissionError`, the
strict quota/occupancy gate in ``Session.evaluate``) are backpressure,
not failures: the scheduler restarts the request's program on the same
session — reuse makes the replay cheap — up to ``max_retries`` times
before marking it failed.

Request observability (``repro.obs.request``): the scheduler mints one
:class:`~repro.obs.request.RequestContext` per request and binds it
onto the request's session and the substrate tracer on every quantum,
so every traced span/instant under a request carries
``request_id``/``tenant``.  Independently of tracing, an always-on
:class:`~repro.obs.request.FlightRecorder` keeps a bounded window of
recent scheduler events and dumps it automatically when an
``AdmissionError`` exhausts its retries, any other exception (e.g. a
``VerificationError``) escapes a request, or an injected fault
recovers — the post-mortem context is already there with tracing off.
"""

from __future__ import annotations

import random
from types import GeneratorType
from typing import Callable, Optional

from repro.common.config import MemphisConfig
from repro.common.errors import AdmissionError
from repro.common.simclock import HOST
from repro.common.stats import (
    FAULTS_RECOVERED,
    SERVER_REQUESTS,
    SERVER_STEPS,
    Stats,
)
from repro.core.session import Session
from repro.core.substrate import Substrate
from repro.obs.events import (
    EV_SERVER_BACKPRESSURE,
    EV_SERVER_REQUEST,
    EV_SERVER_STEP,
)
from repro.obs.metrics import percentile
from repro.obs.request import FlightRecorder, RequestContext
from repro.obs.tracer import current_collector


class Request:
    """One submitted unit of work: a tenant and a program."""

    __slots__ = ("tenant", "name", "program")

    def __init__(self, tenant: str, program: Callable,
                 name: str) -> None:
        self.tenant = tenant
        self.program = program
        self.name = name


class RequestResult:
    """Outcome of one request after the scheduler drained it."""

    __slots__ = ("name", "tenant", "request_id", "ok", "value", "error",
                 "steps", "retries", "sim_latency_s")

    def __init__(self, name: str, tenant: str,
                 request_id: str = "") -> None:
        self.name = name
        self.tenant = tenant
        self.request_id = request_id
        self.ok = False
        self.value = None
        self.error: Optional[str] = None
        self.steps = 0
        self.retries = 0
        #: host sim-clock seconds the request's session consumed by the
        #: time the request finished (includes backpressure replays).
        self.sim_latency_s = 0.0

    def as_record(self) -> dict:
        return {
            "name": self.name,
            "tenant": self.tenant,
            "request_id": self.request_id,
            "ok": self.ok,
            "error": self.error,
            "steps": self.steps,
            "retries": self.retries,
            "sim_latency_s": self.sim_latency_s,
        }


class _Task:
    """Scheduler-internal live state of one request."""

    __slots__ = ("request", "session", "ctx", "gen", "result", "recovered")

    def __init__(self, request: Request, session: Session,
                 ctx: RequestContext) -> None:
        self.request = request
        self.session = session
        self.ctx = ctx
        self.gen: Optional[GeneratorType] = None
        self.result = RequestResult(request.name, request.tenant,
                                    ctx.request_id)
        #: faults/recovered snapshot, for recovery-triggered dumps.
        self.recovered = 0


class ServerReport:
    """Aggregated outcome of one :meth:`Scheduler.run`."""

    def __init__(self, substrate: Substrate,
                 results: list[RequestResult],
                 sessions: list[Session],
                 flight: Optional[FlightRecorder] = None) -> None:
        self.results = results
        self.sessions = sessions
        #: substrate-level counters (cache + server namespaces).
        self.substrate_counters = substrate.stats.counters()
        #: per-tenant CP occupancy/quota snapshot.
        self.tenants = substrate.tenant_occupancy()
        #: producer→consumer dedup benefit matrix (Eq. 2 accounting).
        self.attribution = substrate.attribution_matrix()
        #: per-tenant SLO metrics (latency percentiles, hit rate, ...).
        self.slo = self._build_slo(substrate, results)
        #: flight-recorder post-mortem dumps taken during the run.
        self.flight_dumps = list(flight.dumps) if flight is not None else []
        #: merged counters across the substrate and every session.
        merged = Stats().merge(substrate.stats)
        for session in sessions:
            merged.merge(session.stats)
        self.merged = merged

    @staticmethod
    def _build_slo(substrate: Substrate,
                   results: list[RequestResult]) -> dict[str, dict]:
        """Per-tenant SLO record: one row per registered tenant."""
        consumed: dict[str, dict[str, float]] = {}
        produced: dict[str, int] = {}
        for cell in substrate.attribution_matrix():
            c = consumed.setdefault(cell["consumer"], {"hits": 0, "bytes": 0})
            c["hits"] += cell["hits"]
            c["bytes"] += cell["bytes"]
            produced[cell["producer"]] = (
                produced.get(cell["producer"], 0) + cell["bytes"]
            )
        occupancy = substrate.tenant_occupancy()
        out: dict[str, dict] = {}
        for tenant in sorted(substrate.tenants):
            rs = [r for r in results if r.tenant == tenant]
            latencies = [r.sim_latency_s for r in rs if r.ok]
            events = substrate.tenant_events.get(tenant, {})
            probes = events.get("probes", 0)
            hits = events.get("hits", 0)
            occ = occupancy.get(tenant, {})
            quota = occ.get("quota")
            out[tenant] = {
                "tenant": tenant,
                "requests": len(rs),
                "completed": sum(1 for r in rs if r.ok),
                "failed": sum(1 for r in rs if not r.ok),
                "retries": sum(r.retries for r in rs),
                "latency_p50_s": percentile(latencies, 50),
                "latency_p99_s": percentile(latencies, 99),
                "probes": probes,
                "hits": hits,
                "hit_rate": (hits / probes) if probes else 0.0,
                "cross_session_hits": int(
                    consumed.get(tenant, {}).get("hits", 0)
                ),
                "dedup_bytes_consumed": int(
                    consumed.get(tenant, {}).get("bytes", 0)
                ),
                "dedup_bytes_produced": int(produced.get(tenant, 0)),
                "backpressure_events": events.get("backpressure_events", 0),
                "admission_refusals": events.get("admission_refusals", 0),
                "quota_refusals": events.get("quota_refusals", 0),
                "cp_used": occ.get("used", 0),
                "cp_quota": quota,
                "quota_headroom": (
                    quota - occ.get("used", 0) if quota is not None else None
                ),
            }
        return out

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def counter(self, name: str) -> int:
        return self.merged.get(name)

    def server_counter(self, name: str) -> int:
        return self.substrate_counters.get(name, 0)

    def as_record(self) -> dict:
        """Deterministic JSON-friendly snapshot (smoke/CI comparisons)."""
        return {
            "ok": self.ok,
            "requests": [r.as_record() for r in self.results],
            "server": {
                name: count
                for name, count in sorted(self.substrate_counters.items())
                if name.startswith("server/")
                or name.startswith("cache/")
            },
            "tenants": self.tenants,
            "slo": self.slo,
            "attribution": self.attribution,
            "flight_dumps": [
                {"reason": d["reason"], "request_id": d["request_id"],
                 "tenant": d["tenant"]}
                for d in self.flight_dumps
            ],
        }

    def format(self) -> str:
        lines = ["=== server report ==="]
        for r in self.results:
            status = "ok" if r.ok else f"FAILED ({r.error})"
            lines.append(
                f"  {r.name:<12s} tenant={r.tenant:<8s} "
                f"steps={r.steps:<4d} retries={r.retries} {status}"
            )
        for name in ("server/sessions_attached",
                     "server/cross_session_hits",
                     "server/dedup_bytes_saved",
                     "server/blocks_admitted",
                     "server/backpressure_events",
                     "server/quota_refusals"):
            lines.append(f"  {name:<32s} {self.server_counter(name):>12d}")
        for tenant, occ in self.tenants.items():
            quota = occ["quota"] if occ["quota"] is not None else "-"
            lines.append(
                f"  tenant {tenant:<8s} cp_used={occ['used']:<12d} "
                f"quota={quota} pinned_entries={occ['pinned_entries']}"
            )
        if self.slo:
            lines.append("  -- per-tenant SLO --")
            for tenant, row in self.slo.items():
                lines.append(
                    f"  {tenant:<8s} req={row['completed']}/"
                    f"{row['requests']:<3d} "
                    f"p50={row['latency_p50_s']:.6f}s "
                    f"p99={row['latency_p99_s']:.6f}s "
                    f"hit_rate={row['hit_rate']:.3f} "
                    f"bp={row['backpressure_events']} "
                    f"refused={row['admission_refusals']}"
                )
        if self.attribution:
            lines.append("  -- attribution (producer -> consumer) --")
            for cell in self.attribution:
                lines.append(
                    f"  {cell['producer']:<8s} -> {cell['consumer']:<8s} "
                    f"hits={cell['hits']:<4d} bytes={cell['bytes']:<10d} "
                    f"cost_avoided={cell['cost_avoided']:.3e}"
                )
        for dump in self.flight_dumps:
            lines.append(
                f"  flight dump: reason={dump['reason']} "
                f"request={dump['request_id']} tenant={dump['tenant']} "
                f"events={len(dump['events'])}"
            )
        return "\n".join(lines)


class Scheduler:
    """Run many sessions against one shared substrate, deterministically.

    ``seed`` fixes the interleave: every scheduler step draws the next
    runnable request from a ``random.Random(seed)``, so two runs with
    the same seed and submissions execute identically (same hit/miss
    sequence, same counters, same results).
    """

    def __init__(self, substrate: Optional[Substrate] = None, *,
                 config: Optional[MemphisConfig] = None,
                 config_factory: Optional[Callable[[], MemphisConfig]] = None,
                 seed: int = 0, max_retries: int = 8,
                 flight_capacity: int = 256) -> None:
        self.config = config or MemphisConfig.server_session()
        self.substrate = substrate if substrate is not None \
            else Substrate.shared_substrate(self.config)
        #: fresh per-session config (auto-tuning mutates per-session
        #: knobs, so sessions must not alias one config object).
        self._config_factory = config_factory or MemphisConfig.server_session
        self.seed = seed
        self.max_retries = max_retries
        #: always-on bounded post-mortem window (``repro.obs.request``).
        self.flight = FlightRecorder(flight_capacity)
        self._requests: list[Request] = []
        self.sessions: list[Session] = []

    # -- submission ----------------------------------------------------------

    def add_tenant(self, name: str,
                   cp_quota: Optional[int] = None) -> None:
        """Register a tenant (optionally with a CP fair-share quota)."""
        self.substrate.set_quota(name, cp_quota)

    def submit(self, tenant: str, program: Callable,
               name: Optional[str] = None) -> Request:
        """Queue ``program`` to run as ``tenant``; returns the request."""
        request = Request(
            tenant, program,
            name if name is not None else f"r{len(self._requests)}",
        )
        self._requests.append(request)
        self.substrate.stats.inc(SERVER_REQUESTS)
        return request

    # -- driver loop ---------------------------------------------------------

    def run(self) -> ServerReport:
        """Drain the request queue; returns the aggregated report."""
        rng = random.Random(self.seed)
        collector = current_collector()
        if collector is not None and self.flight not in collector.sinks:
            # traced run: the post-mortem window also sees full spans
            collector.add_sink(self.flight)
        tasks = []
        for index, request in enumerate(self._requests):
            # sessions attach in submit order, so uids — and therefore
            # key namespaces — are deterministic
            session = Session(
                self._config_factory(), substrate=self.substrate,
                tenant=request.tenant,
            )
            ctx = RequestContext(
                f"req-{index:03d}-{request.name}", request.tenant,
                seed=self.seed, name=request.name,
            )
            session.bind_request(ctx)
            if session.trace_collector is not None:
                session.trace_collector.session_labels[
                    session.tracer.session_id
                ] = f"{request.name}@{request.tenant}"
            self.sessions.append(session)
            tasks.append(_Task(request, session, ctx))
        self._requests = []
        active = list(tasks)
        while active:
            index = rng.randrange(len(active)) if len(active) > 1 else 0
            if self._step(active[index]):
                active.pop(index)
        self.substrate.activate(None)
        self.substrate.tracer.bind_request(None)
        return ServerReport(self.substrate, [t.result for t in tasks],
                            self.sessions, flight=self.flight)

    def _step(self, task: _Task) -> bool:
        """Advance one request by one scheduling quantum; True = done."""
        substrate = self.substrate
        substrate.stats.inc(SERVER_STEPS)
        task.result.steps += 1
        substrate.activate(task.session._ctx)
        now = task.session.clock.now(HOST)
        tracer = substrate.tracer
        if tracer.enabled:
            tracer.bind_request(task.ctx)
            tracer.instant(
                EV_SERVER_STEP, tenant=task.request.tenant,
                request=task.request.name, step=task.result.steps,
            )
        else:
            # untraced: the flight recorder still gets one cheap
            # instant per quantum, so a dump has scheduling context
            self.flight.record(EV_SERVER_STEP, now, ctx=task.ctx,
                               step=task.result.steps)
        try:
            if task.gen is None:
                out = task.request.program(task.session)
                if isinstance(out, GeneratorType):
                    task.gen = out
                    self._check_recovery(task)
                    return False
                return self._finish(task, out)
            next(task.gen)
            self._check_recovery(task)
            return False
        except StopIteration as stop:
            return self._finish(task, stop.value)
        except AdmissionError as exc:
            # backpressure: the generator (if any) died with the raise,
            # so restart the program on the same session — reuse makes
            # the replay cheap — until the retry budget runs out
            task.gen = None
            task.result.retries += 1
            ts = task.session.clock.now(HOST)
            if not tracer.enabled:
                self.flight.record(
                    EV_SERVER_BACKPRESSURE, ts, ctx=task.ctx,
                    region=exc.region, nbytes=exc.demand,
                    retry=task.result.retries,
                )
            if task.result.retries > self.max_retries:
                task.result.error = f"admission refused: {exc}"
                self.flight.dump(
                    "admission_error", ts=ts, ctx=task.ctx,
                    region=exc.region, demand=exc.demand,
                    retries=task.result.retries,
                )
                return True
            return False
        except Exception as exc:  # noqa: BLE001 - fault isolation
            # one tenant's failure must not take the server down; the
            # flight recorder preserves what was in flight (this is the
            # VerificationError path, among others)
            task.result.error = f"{type(exc).__name__}: {exc}"
            self.flight.dump(
                type(exc).__name__, ts=task.session.clock.now(HOST),
                ctx=task.ctx, message=str(exc),
            )
            return True

    def _finish(self, task: _Task, value) -> bool:
        """Mark a request complete; record its SLO latency sample."""
        task.result.value = value
        task.result.ok = True
        latency = task.session.clock.now(HOST)
        task.result.sim_latency_s = latency
        self._check_recovery(task)
        tracer = self.substrate.tracer
        if tracer.enabled:
            tracer.instant(
                EV_SERVER_REQUEST, ok=True, latency_s=latency,
                steps=task.result.steps, retries=task.result.retries,
            )
        else:
            self.flight.record(
                EV_SERVER_REQUEST, latency, ctx=task.ctx, ok=True,
                latency_s=latency, steps=task.result.steps,
                retries=task.result.retries,
            )
        metrics = task.session.metrics
        if metrics.enabled:
            metrics.observe(
                f"server/tenant/{task.request.tenant}/request_latency_s",
                latency, unit="s",
            )
        return True

    def _check_recovery(self, task: _Task) -> None:
        """Dump the flight window when an injected fault just recovered."""
        recovered = task.session.stats.get(FAULTS_RECOVERED)
        if recovered > task.recovered:
            task.recovered = recovered
            self.flight.dump(
                "fault_recovery", ts=task.session.clock.now(HOST),
                ctx=task.ctx, recovered=recovered,
            )
