"""Canonical multi-tenant workload for the reuse server.

Deterministic programs used by the harness ``--server`` mode, the CI
smoke (``scripts/server_smoke.py``), and the wallclock benchmark track:
several sessions across two tenants run an *identical* pure ridge
pipeline over the same datasets — every session after the first should
hit the shared substrate (``server/cross_session_hits``) — while the
impure variants draw unseeded random matrices and therefore stay
session-scoped (zero cross-session hits, by the namespacing rules in
``repro.core.substrate``).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.common.config import MemphisConfig
from repro.core.substrate import Substrate
from repro.server.scheduler import Scheduler, ServerReport


def demo_dataset(rows: int, cols: int, offset: float = 0.0) -> np.ndarray:
    """A deterministic input matrix (same bytes in every process)."""
    n = rows * cols
    return (
        (np.arange(n, dtype=np.float64) * 0.25 + offset) % 17.0
    ).reshape(rows, cols)


def pure_program(rows: int = 48, cols: int = 6,
                 ridge: float = 0.1,
                 name: str = "demo_X") -> Callable:
    """A fully deterministic ridge-regression pipeline.

    Every session running this reads byte-identical datasets under the
    same names, so its entire lineage unifies under the global namespace
    — the second and later sessions reuse the first one's entries.
    """
    features = demo_dataset(rows, cols)
    labels = demo_dataset(rows, 1, offset=3.0)

    def program(session):
        X = session.read(features, name)
        y = session.read(labels, name + "_y")
        yield
        gram = X.t() @ X
        xty = (y.t() @ X).t()
        session.evaluate([gram, xty])
        yield
        beta = session.solve(gram + ridge * session.eye(cols), xty)
        return float(session.compute(beta).sum())

    return program


def impure_program(rows: int = 32, cols: int = 4) -> Callable:
    """A pipeline rooted at an *unseeded* ``rand``.

    The auto-drawn seed is a session-local counter, so identical
    lineage across sessions names different data — the substrate keeps
    every key session-scoped and cross-session hits stay at zero.
    """

    def program(session):
        noise = session.rand(rows, cols)
        yield
        gram = noise.t() @ noise
        return float(session.compute(gram).sum())

    return program


def run_server_demo(sessions: int = 4, *, seed: int = 0,
                    quota: Optional[int] = None,
                    include_impure: bool = True,
                    substrate: Optional[Substrate] = None) -> ServerReport:
    """Run the canonical demo: ``sessions`` pure requests + 2 impure.

    Requests alternate between tenants ``alpha`` and ``beta``; ``quota``
    (bytes) caps each tenant's CP fair share when given.  Deterministic
    for a fixed ``seed``: same interleave, same counters, same results.
    """
    scheduler = Scheduler(
        substrate, config=MemphisConfig.server_session(), seed=seed,
    )
    scheduler.add_tenant("alpha", quota)
    scheduler.add_tenant("beta", quota)
    for i in range(sessions):
        tenant = "alpha" if i % 2 == 0 else "beta"
        scheduler.submit(tenant, pure_program(), name=f"pure{i}")
    if include_impure:
        scheduler.submit("alpha", impure_program(), name="impure0")
        scheduler.submit("beta", impure_program(), name="impure1")
    return scheduler.run()
