"""Multi-tenant reuse server over a shared substrate (ROADMAP item 1).

Many concurrent sessions multiplexed onto one
:class:`~repro.core.substrate.Substrate`: one lineage cache, one
interner, one CP/DISK arbiter — so tenant B's pure subexpressions hit
what tenant A just cached (``server/cross_session_hits``), while
seeded/impure work stays session-scoped and per-tenant quotas keep a
greedy tenant from evicting a well-behaved one (see docs/SERVER.md).

The :class:`Scheduler` runs a request stream deterministically: a
seeded interleave picks which request advances next, admission refusals
(:class:`~repro.common.errors.AdmissionError`) surface as backpressure
and requeue the request, and the :class:`ServerReport` aggregates
per-request outcomes, merged counters, per-tenant occupancy and SLO
metrics, a producer→consumer cost-attribution matrix, and any
flight-recorder post-mortem dumps (see ``repro.obs.request``).
"""

from repro.server.demo import (
    impure_program,
    pure_program,
    run_server_demo,
)
from repro.server.scheduler import (
    Request,
    RequestResult,
    Scheduler,
    ServerReport,
)

__all__ = [
    "Request",
    "RequestResult",
    "Scheduler",
    "ServerReport",
    "pure_program",
    "impure_program",
    "run_server_demo",
]
