#!/usr/bin/env python
"""CI smoke test for the tracing pipeline.

Runs ``examples/quickstart.py --trace`` end-to-end as a subprocess and
validates the produced Chrome-trace file against the JSON schema in
``repro.obs.schema``, then checks the structural properties the
observability docs promise: distinct backend lanes, instruction spans,
and cache events attributed to specific instructions.

Usage::

    python scripts/trace_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.obs import load_chrome_trace, validate_chrome_trace  # noqa: E402
from repro.obs.chrome import LANE_TIDS  # noqa: E402
from repro.obs.events import EV_INSTR, EV_PROBE, LANE_CP, LANE_SP  # noqa: E402


def fail(message: str) -> "NoReturn":  # noqa: F821 - py<3.11 spelling
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "trace.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(REPO, "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO, "examples", "quickstart.py"),
             "--trace", trace_path],
            capture_output=True, text=True, env=env, timeout=600,
        )
        if proc.returncode != 0:
            print(proc.stdout)
            print(proc.stderr)
            fail(f"quickstart --trace exited with {proc.returncode}")
        if "=== trace summary ===" not in proc.stdout:
            fail("quickstart did not print the trace summary")

        doc = load_chrome_trace(trace_path)
        problems = validate_chrome_trace(doc)
        if problems:
            for p in problems[:10]:
                print(f"  schema: {p}")
            fail(f"{len(problems)} schema violations in {trace_path}")

        events = doc["traceEvents"]
        payload = [e for e in events if e["ph"] != "M"]
        if not payload:
            fail("trace contains no payload events")

        lanes = {e["tid"] for e in payload}
        for lane in (LANE_CP, LANE_SP):
            if LANE_TIDS[lane] not in lanes:
                fail(f"no events on the {lane} lane")

        instrs = [e for e in payload if e["name"] == EV_INSTR]
        if not instrs:
            fail("no instruction spans recorded")
        probes = [e for e in payload if e["name"] == EV_PROBE]
        if not probes:
            fail("no cache probes recorded")
        unattributed = [e for e in probes
                        if "instr" not in (e.get("args") or {})]
        if unattributed:
            fail(f"{len(unattributed)} probes not attributed to an "
                 f"instruction")
        hits = [e for e in probes if e["args"].get("hit")]
        if not hits:
            fail("MEMPHIS session produced no probe hits")

        print(f"OK: {len(payload)} events, {len(instrs)} instruction "
              f"spans, {len(probes)} probes ({len(hits)} hits), lanes "
              f"{sorted(lanes)} — schema valid")


if __name__ == "__main__":
    main()
