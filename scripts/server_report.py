#!/usr/bin/env python
"""Server observability report: per-tenant SLO table + attribution matrix.

Runs the multi-tenant reuse server demo (or validates an existing JSONL
stream) and renders the request-observability surfaces of issue 10:

* a per-tenant SLO table — request latency p50/p99 on the sim clock,
  hit rate, dedup bytes produced/consumed, quota headroom, and
  backpressure/admission-refusal counts;
* the producer→consumer cost-attribution matrix (bytes and Eq. 2
  recompute cost avoided by cross-session hits);
* the schema-validated ``SERVER`` JSONL stream — byte-reproducible for
  a fixed seed, so CI can diff two runs directly.

Usage::

    python scripts/server_report.py                       # 8 sessions, seed 0
    python scripts/server_report.py --sessions 8 --seed 7 --out out.jsonl
    python scripts/server_report.py --validate out.jsonl
"""

from __future__ import annotations

import argparse
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.harness.telemetry import (  # noqa: E402
    read_server_jsonl,
    server_report_records,
    validate_server_records,
    write_server_jsonl,
)
from repro.server import run_server_demo  # noqa: E402


def _fmt_quota(value) -> str:
    return str(value) if value is not None else "-"


def render_slo_table(slo: dict[str, dict]) -> str:
    """Fixed-width per-tenant SLO table."""
    header = (
        f"{'tenant':<10s} {'req':>7s} {'p50_s':>12s} {'p99_s':>12s} "
        f"{'hit_rate':>8s} {'dedup_in':>10s} {'dedup_out':>10s} "
        f"{'headroom':>10s} {'bp':>4s} {'refused':>7s}"
    )
    lines = [header, "-" * len(header)]
    for tenant in sorted(slo):
        row = slo[tenant]
        lines.append(
            f"{tenant:<10s} "
            f"{row['completed']}/{row['requests']:<5d} "
            f"{row['latency_p50_s']:>12.6f} {row['latency_p99_s']:>12.6f} "
            f"{row['hit_rate']:>8.3f} "
            f"{row['dedup_bytes_consumed']:>10d} "
            f"{row['dedup_bytes_produced']:>10d} "
            f"{_fmt_quota(row['quota_headroom']):>10s} "
            f"{row['backpressure_events']:>4d} "
            f"{row['admission_refusals']:>7d}"
        )
    return "\n".join(lines)


def render_attribution(matrix: list[dict]) -> str:
    """Producer→consumer benefit matrix, one row per pair."""
    if not matrix:
        return "(no cross-session hits)"
    header = (
        f"{'producer':<10s} {'consumer':<10s} {'hits':>6s} "
        f"{'bytes':>12s} {'cost_avoided':>14s}"
    )
    lines = [header, "-" * len(header)]
    for cell in matrix:
        lines.append(
            f"{cell['producer']:<10s} {cell['consumer']:<10s} "
            f"{cell['hits']:>6d} {cell['bytes']:>12d} "
            f"{cell['cost_avoided']:>14.3e}"
        )
    return "\n".join(lines)


def validate_file(path: str) -> int:
    records = read_server_jsonl(path)
    problems = validate_server_records(records)
    if problems:
        for p in problems:
            print(f"  schema: {p}")
        print(f"FAIL: {len(problems)} problem(s) in {path}")
        return 1
    kinds = [r.get("kind") for r in records]
    print(f"OK: {path} is a valid server report "
          f"({kinds.count('request')} request(s), "
          f"{kinds.count('tenant_slo')} tenant(s), "
          f"{kinds.count('attribution')} attribution cell(s))")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python scripts/server_report.py",
        description="Render the per-tenant SLO table and cost-attribution "
                    "matrix of a multi-tenant server run.",
    )
    parser.add_argument("--sessions", type=int, default=8,
                        help="number of concurrent sessions (default 8)")
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic interleave seed (default 0)")
    parser.add_argument("--out", metavar="OUT.jsonl", default=None,
                        help="also write the SERVER_SCHEMA JSONL stream")
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing JSONL stream and exit")
    args = parser.parse_args(argv)

    if args.validate is not None:
        return validate_file(args.validate)

    report = run_server_demo(args.sessions, seed=args.seed)
    print("=== per-tenant SLO ===")
    print(render_slo_table(report.slo))
    print()
    print("=== cost attribution (producer -> consumer) ===")
    print(render_attribution(report.attribution))
    if report.flight_dumps:
        print()
        print("=== flight-recorder dumps ===")
        for dump in report.flight_dumps:
            print(f"  {dump['reason']}: request={dump['request_id']} "
                  f"tenant={dump['tenant']} events={len(dump['events'])}")
    records = server_report_records(report, args.sessions, args.seed)
    problems = validate_server_records(records)
    if problems:
        for p in problems:
            print(f"  schema: {p}")
        print("FAIL: generated records do not validate")
        return 1
    if args.out:
        write_server_jsonl(args.out, records)
        print(f"\n[server report: {len(records)} records -> {args.out}]")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
