#!/usr/bin/env python
"""Eviction-policy sweep over the memory-arbitration substrate.

Runs the README quickstart and the Fig. 12(a)/(b) experiments under
all four eviction policies (``cost_size``, ``lru``, ``lrc``, ``mrd``)
applied to every region via the config override hook the harness
``--policy``/``--gpu-policy``/``--spark-policy`` flags use, and checks:

* every policy completes every workload (no arbiter dead-ends: a
  reservation failure under an exotic policy must degrade to a cache
  miss, never an exception);
* every policy still reuses (positive lineage-cache hit rate on the
  reuse configurations of Fig. 12);
* the default Cost&Size policy is not regressed: its hit rates equal
  the rates derived from the recorded pre-refactor baseline
  (``benchmarks/baselines/fig12_counters.json``).  Raw hit *count* is
  the wrong axis to rank policies on (Eq. 1 maximizes compute cost
  saved, and e.g. LRC happily hoards many cheap entries), so the sweep
  compares the default against its own history, not against the other
  policies;
* the default-policy run is deterministic (two runs, identical
  counters).

Run by ``.github/workflows/memory.yml``; exits 1 on any violation.

Usage::

    python scripts/memory_sweep.py
"""

from __future__ import annotations

import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, os.path.join(REPO, "examples"))

import numpy as np  # noqa: E402

from repro import MemphisConfig, Session  # noqa: E402
from repro.common.config import (  # noqa: E402
    EvictionPolicyName,
    clear_policy_overrides,
    install_policy_overrides,
)
from repro.harness import runner  # noqa: E402

BASELINE = os.path.join(REPO, "benchmarks", "baselines",
                        "fig12_counters.json")

POLICIES = [
    EvictionPolicyName.COST_SIZE,
    EvictionPolicyName.LRU,
    EvictionPolicyName.LRC,
    EvictionPolicyName.MRD,
]


def run_quickstart() -> None:
    """The README's grid-search example at a small size."""
    from quickstart import grid_search

    rng = np.random.default_rng(1)
    X = rng.random((256, 16))
    y = X @ rng.random((16, 1)) + 0.01 * rng.random((256, 1))
    grid_search(Session(MemphisConfig.memphis()), X, y,
                regs=[0.01, 0.1, 1.0])


def hit_rate(cells: dict) -> float:
    """Aggregate lineage-cache hit rate over one experiment grid."""
    hits = misses = 0
    for row in cells.values():
        for label, result in row.items():
            if label == "Base":
                continue  # no-reuse baseline: nothing to hit
            hits += result.counter("cache/hits")
            misses += result.counter("cache/misses")
    return hits / max(hits + misses, 1)


def baseline_hit_rates() -> dict[str, float]:
    """Hit rates the pre-refactor code achieved (recorded baseline)."""
    with open(BASELINE) as fh:
        recorded = json.load(fh)
    rates = {}
    for exp, grid in recorded.items():
        hits = misses = 0
        for row in grid.values():
            for label, cell in row.items():
                if label == "Base":
                    continue
                hits += int(cell["counters"].get("cache/hits", 0))
                misses += int(cell["counters"].get("cache/misses", 0))
        rates[exp] = hits / max(hits + misses, 1)
    return rates


def run_policy(policy: EvictionPolicyName) -> dict[str, float]:
    install_policy_overrides(policy=policy, gpu_policy=policy,
                             spark_policy=policy)
    try:
        run_quickstart()
        rates = {
            "fig12a": hit_rate(runner.run_experiment_fig12a().grid),
            "fig12b": hit_rate(runner.run_experiment_fig12b().grid),
        }
    finally:
        clear_policy_overrides()
    return rates


def run_policy_counters(policy: EvictionPolicyName) -> dict:
    """One fig12a run reduced to its counters (determinism check)."""
    install_policy_overrides(policy=policy, gpu_policy=policy,
                             spark_policy=policy)
    try:
        grid = runner.run_experiment_fig12a().grid
    finally:
        clear_policy_overrides()
    return {
        str(x): {label: dict(sorted(res.counters.items()))
                 for label, res in row.items()}
        for x, row in grid.items()
    }


def main() -> int:
    failures: list[str] = []
    rates: dict[str, dict[str, float]] = {}
    for policy in POLICIES:
        try:
            rates[policy.value] = run_policy(policy)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"{policy.value}: crashed: {exc!r}")
            continue
        for exp, rate in rates[policy.value].items():
            print(f"[memory_sweep] {policy.value:9s} {exp}: "
                  f"hit rate {rate:.3f}")
            if rate <= 0.0:
                failures.append(
                    f"{policy.value}/{exp}: no cache hits at all"
                )

    default = EvictionPolicyName.COST_SIZE.value
    if default in rates:
        recorded = baseline_hit_rates()
        for exp, expected in recorded.items():
            got = rates[default][exp]
            if abs(got - expected) > 1e-12:
                failures.append(
                    f"default cost_size regressed on {exp}: hit rate "
                    f"{got:.6f} vs recorded baseline {expected:.6f}"
                )

    first = run_policy_counters(EvictionPolicyName.COST_SIZE)
    second = run_policy_counters(EvictionPolicyName.COST_SIZE)
    if first != second:
        failures.append("default-policy fig12a run is not deterministic")

    if failures:
        print("\n[memory_sweep] FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\n[memory_sweep] OK: {len(POLICIES)} policies x "
          f"(quickstart + fig12a + fig12b), determinism verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
