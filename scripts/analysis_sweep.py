#!/usr/bin/env python
"""Run the static IR verifier over the quickstart example and every
registered workload, failing on any error-severity diagnostic.

Every sweep also runs under the static memory planner
(``repro.analysis.memplan``): each session's per-region predicted peak
must be an upper bound on the runtime's observed ``peak_used``
watermark, and a bound violation fails the gate like an error
diagnostic would.

This is the repository's self-lint gate (run by
``.github/workflows/lint.yml``): the analyzer must report zero errors
over all programs the repo itself compiles.

With ``--fusion`` the sweep installs the ambient fusion override
(``repro.common.config.install_fusion_override``), so every session
compiles with the reuse-aware fusion rewrite enabled and the FUS rule
family (``repro.analysis.fusion_rules``) self-lints every fused chain
the repo's own workloads produce.

Usage::

    python scripts/analysis_sweep.py
    python scripts/analysis_sweep.py --fusion
"""

from __future__ import annotations

import argparse
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, os.path.join(REPO, "examples"))

import numpy as np  # noqa: E402

from repro import MemphisConfig, Session  # noqa: E402
from repro.analysis import collecting, planning  # noqa: E402
from repro.analysis.targets import TARGETS  # noqa: E402


def sweep_quickstart() -> None:
    """The README's grid-search example at a small size."""
    from quickstart import grid_search

    rng = np.random.default_rng(1)
    X = rng.random((256, 16))
    y = X @ rng.random((16, 1)) + 0.01 * rng.random((256, 1))
    grid_search(Session(MemphisConfig.memphis()), X, y,
                regs=[0.01, 0.1, 1.0])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python scripts/analysis_sweep.py",
        description="Static IR verifier self-lint over all workloads.",
    )
    parser.add_argument("--fusion", action="store_true",
                        help="enable the reuse-aware fusion rewrite on "
                             "every session so the FUS rules self-lint "
                             "the fused plans")
    args = parser.parse_args(argv)

    if args.fusion:
        from repro.common.config import install_fusion_override

        install_fusion_override(True)
        print("[compiler: reuse-aware operator fusion enabled]")

    try:
        return _sweep_all()
    finally:
        if args.fusion:
            from repro.common.config import clear_fusion_override

            clear_fusion_override()


def _sweep_all() -> int:
    sweeps = [("quickstart", sweep_quickstart)]
    sweeps += [(name, thunk) for name, (_, thunk) in TARGETS.items()]

    failed = 0
    bound_violations = 0
    for name, thunk in sweeps:
        with collecting() as collector, planning() as memplan:
            thunk()
        report = collector.merged()
        errors = report.errors()
        bad_bounds = [(label, region, pred, obs)
                      for label, region, pred, obs, ok
                      in memplan.check_bounds() if not ok]
        status = f"{len(errors)} error(s)" if errors else "clean"
        if bad_bounds:
            status += f", {len(bad_bounds)} memplan bound violation(s)"
        print(f"{name:12s} {collector.blocks_verified:5d} block(s)  "
              f"[{report.summary()}] -> {status}")
        for diag in errors:
            print("   " + diag.format().replace("\n", "\n   "))
        for label, region, pred, obs in bad_bounds:
            print(f"   memplan: session {label} region {region}: "
                  f"predicted peak {pred} B < observed {obs} B")
        failed += len(errors)
        bound_violations += len(bad_bounds)

    if failed or bound_violations:
        print(f"FAIL: {failed} error-severity diagnostic(s), "
              f"{bound_violations} memplan bound violation(s)")
        return 1
    print(f"OK: {len(sweeps)} program(s) verified, zero errors, "
          "all memory-plan bounds hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
