#!/usr/bin/env python
"""CI smoke test for the multi-tenant reuse server (docs/SERVER.md).

Runs the canonical shared-substrate demo (``repro.server``) twice with
the same interleave seed and checks the promises the server makes:

* cross-session deduplication actually happens — the overlapping pure
  pipelines report ``server/cross_session_hits > 0`` and
  ``server/dedup_bytes_saved > 0``;
* every request completes, and the pure requests all compute the same
  answer (one cached result served to every session);
* two same-seed runs are byte-identical (same schedule, same counters,
  same per-request outcomes) and a different seed changes the schedule
  but never the answers;
* the ``--server`` harness mode works end-to-end as a subprocess;
* ``--server-report`` emits a ``SERVER_SCHEMA``-valid JSONL stream
  with a **non-empty attribution matrix** (the pure pipelines must
  credit a producer tenant), byte-identical across same-seed runs.

Usage::

    python scripts/server_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.common.stats import (  # noqa: E402
    SERVER_CROSS_HITS,
    SERVER_DEDUP_BYTES,
)
from repro.harness.telemetry import (  # noqa: E402
    read_server_jsonl,
    validate_server_records,
)
from repro.server import run_server_demo  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> None:
    first = run_server_demo(4, seed=11)
    print(first.format())
    if not first.ok:
        fail("demo run reported failed requests")
    cross = first.server_counter(SERVER_CROSS_HITS)
    saved = first.server_counter(SERVER_DEDUP_BYTES)
    if cross <= 0:
        fail(f"expected cross-session hits, got {cross}")
    if saved <= 0:
        fail(f"expected dedup bytes saved, got {saved}")

    pure_values = {r.value for r in first.results
                   if r.name.startswith("pure")}
    if len(pure_values) != 1:
        fail(f"pure sessions disagree: {sorted(pure_values)}")

    second = run_server_demo(4, seed=11)
    a, b = first.as_record(), second.as_record()
    if a != b:
        print(json.dumps(a, indent=2, sort_keys=True))
        print(json.dumps(b, indent=2, sort_keys=True))
        fail("two same-seed runs produced different reports")

    reshuffled = run_server_demo(4, seed=23)
    if not reshuffled.ok:
        fail("reshuffled run reported failed requests")
    if {r.name: r.value for r in reshuffled.results} \
            != {r.name: r.value for r in first.results}:
        fail("interleave seed changed request results")

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.harness", "--server", "3",
         "--server-seed", "5"],
        capture_output=True, text=True, env=env, timeout=600,
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr)
        fail(f"harness --server exited with {proc.returncode}")
    if "=== server report ===" not in proc.stdout:
        fail("harness --server did not print the server report")

    # SLO/attribution JSONL stream: schema-valid, attribution non-empty,
    # byte-identical for the same seed (issue 10)
    with tempfile.TemporaryDirectory() as tmp:
        streams = []
        for i in range(2):
            out = os.path.join(tmp, f"server{i}.jsonl")
            proc = subprocess.run(
                [sys.executable, "-m", "repro.harness", "--server", "4",
                 "--server-seed", "11", "--server-report", out],
                capture_output=True, text=True, env=env, timeout=600,
            )
            if proc.returncode != 0:
                print(proc.stdout)
                print(proc.stderr)
                fail(f"--server-report run exited with {proc.returncode}")
            with open(out, "rb") as fh:
                streams.append(fh.read())
            records = read_server_jsonl(out)
        problems = validate_server_records(records)
        if problems:
            for p in problems:
                print(f"  schema: {p}")
            fail("--server-report stream violates SERVER_SCHEMA")
        if streams[0] != streams[1]:
            fail("same-seed --server-report streams are not byte-identical")
        attribution = [r for r in records if r.get("kind") == "attribution"]
        if not attribution:
            fail("attribution matrix is empty — cross-session hits "
                 "credited no producer tenant")
        slo = [r for r in records if r.get("kind") == "tenant_slo"]
        print(f"[server report: {len(slo)} tenant SLO row(s), "
              f"{len(attribution)} attribution cell(s)]")

    print("OK: server smoke passed (cross-session dedup + determinism "
          "+ SLO/attribution stream)")


if __name__ == "__main__":
    main()
