#!/usr/bin/env python
"""Seeded chaos sweep: randomized fault plans must never change numerics.

For each of N seeds, generates a random (but seed-deterministic)
:class:`repro.faults.FaultPlan`, runs a reference workload under it on
both a CP-heavy and a Spark-forced configuration, and asserts the output
is numerically identical to the fault-free run of the same
configuration.  Also checks the framework's property invariants after
every faulted run: driver-cache budget accounting is exact, no GPU
allocations leak, and retry budgets were respected.

Run by ``.github/workflows/chaos.yml``; exits 1 on any divergence.

Usage::

    python scripts/chaos_sweep.py [N_SEEDS] [--verbose]
"""

from __future__ import annotations

import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

import numpy as np  # noqa: E402

from repro import MemphisConfig, Session  # noqa: E402
from repro.common.stats import FAULTS_INJECTED, FAULTS_RECOVERED  # noqa: E402
from repro.faults import FaultPlan, reset_global_ids  # noqa: E402

DATA = (np.arange(2000.0 * 8).reshape(2000, 8) % 23.0) / 23.0
TARGET = (np.arange(2000.0).reshape(2000, 1) % 7.0) / 7.0


def make_config(kind: str) -> MemphisConfig:
    cfg = MemphisConfig.memphis()
    if kind == "spark":
        cfg.cpu.operation_memory_bytes = 64 * 1024  # force SP placement
    elif kind == "gpu":
        cfg.gpu_enabled = True
        cfg.spark_enabled = False
    return cfg


def run(kind: str, plan: FaultPlan | None):
    reset_global_ids()
    cfg = make_config(kind)
    cfg.faults = plan
    sess = Session(cfg)
    X = sess.read(DATA, "X")
    y = sess.read(TARGET, "y")
    w = sess.read(np.zeros((8, 1)), "w0")
    for _ in range(3):
        grad = X.t() @ (X @ w) - X.t() @ y
        w = w - 0.01 * grad
    return sess, w.compute()


def check_invariants(sess: Session, label: str) -> list[str]:
    problems = []
    accounted = sum(e.cp_accounted for e in sess.cache.entries())
    if sess.cache.cp_bytes != accounted or sess.cache.cp_bytes < 0:
        problems.append(
            f"{label}: driver-cache accounting drifted "
            f"(cp_bytes={sess.cache.cp_bytes}, accounted={accounted})"
        )
    report = sess.gpu.memory.device.allocation_report()
    if not report["consistent"]:
        problems.append(f"{label}: GPU address space inconsistent: {report}")
    plan = sess.faults.plan
    budget = plan.max_task_retries * max(
        1, sum(s.count for s in plan.specs))
    if sess.stats.get("faults/spark_task_retries") > budget:
        problems.append(f"{label}: task retry budget exceeded")
    return problems


def main(argv: list[str]) -> int:
    n_seeds = int(argv[1]) if len(argv) > 1 and argv[1].isdigit() else 12
    verbose = "--verbose" in argv

    configs = ("cp", "spark")
    expected = {kind: run(kind, None)[1] for kind in configs}

    divergences = 0
    for seed in range(n_seeds):
        plan = FaultPlan.randomize(seed)
        for kind in configs:
            sess, out = run(kind, plan)
            injected = sess.stats.get(FAULTS_INJECTED)
            recovered = sess.stats.get(FAULTS_RECOVERED)
            problems = check_invariants(sess, f"seed {seed}/{kind}")
            if not np.array_equal(out, expected[kind]):
                problems.append(
                    f"seed {seed}/{kind}: output diverged from fault-free "
                    f"run (max delta "
                    f"{np.max(np.abs(out - expected[kind])):.3e})"
                )
            status = "ok" if not problems else "FAIL"
            if verbose or problems:
                print(f"seed {seed:3d} {kind:6s} "
                      f"injected={injected:2d} recovered={recovered:2d} "
                      f"-> {status}")
            for problem in problems:
                print("   " + problem)
            divergences += len(problems)

    total = n_seeds * len(configs)
    if divergences:
        print(f"FAIL: {divergences} problem(s) across {total} chaos runs")
        return 1
    print(f"OK: {total} chaos runs converged to fault-free outputs "
          f"({n_seeds} seeds x {len(configs)} configs)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
