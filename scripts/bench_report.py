#!/usr/bin/env python
"""Benchmark telemetry pipeline: run experiments, emit BENCH_<n>.json.

Runs harness experiments under an ambient metrics collector and writes
one schema-validated record per experiment (simulated time, wall-clock,
key counters, metric-series digests).  CI runs the fast subset and
gates on the schema; the full run regenerates the committed report.

Usage::

    python scripts/bench_report.py                  # all experiments
    python scripts/bench_report.py --fast           # CI subset
    python scripts/bench_report.py fig11a fig2c     # selected
    python scripts/bench_report.py --validate BENCH_5.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.harness.__main__ import EXPERIMENTS  # noqa: E402
from repro.harness.telemetry import (  # noqa: E402
    build_bench_report,
    experiment_record,
    validate_bench_report,
)
from repro.obs import MetricsCollector, disable_metrics, enable_metrics  # noqa: E402

#: the issue number this report belongs to (BENCH_<ISSUE>.json).
ISSUE = 5

#: quick experiments CI can afford on every push.
FAST_SUBSET = ("fig2c", "fig2d", "fig11a", "fig12b")


def run_experiments(names: list[str]) -> list[dict]:
    """Run each experiment under its own metrics collector."""
    records = []
    for name in names:
        collector = MetricsCollector()
        enable_metrics(collector)
        start = time.time()
        try:
            result = EXPERIMENTS[name]()
        finally:
            disable_metrics()
        wall = time.time() - start
        record = experiment_record(name, result, wall, collector)
        records.append(record)
        print(f"[{name}: sim {record['sim_time_s']:.3f}s, "
              f"wall {wall:.1f}s, {record['workloads']} workload(s), "
              f"{len(record['metric_series'])} metric series]")
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python scripts/bench_report.py",
        description="Run harness experiments and emit a schema-validated "
                    "benchmark telemetry report.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--fast", action="store_true",
                        help=f"run the CI subset only: {', '.join(FAST_SUBSET)}")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help=f"output path (default: BENCH_{ISSUE}.json "
                             f"in the repo root)")
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing report and exit")
    args = parser.parse_args(argv)

    if args.validate is not None:
        with open(args.validate, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        problems = validate_bench_report(doc)
        if problems:
            for p in problems:
                print(f"  schema: {p}")
            print(f"FAIL: {len(problems)} problem(s) in {args.validate}")
            return 1
        print(f"OK: {args.validate} is a valid bench report "
              f"({len(doc['experiments'])} experiment(s))")
        return 0

    if args.fast:
        selected = list(FAST_SUBSET)
    else:
        selected = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in selected if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    records = run_experiments(selected)
    doc = build_bench_report(records, issue=ISSUE)
    problems = validate_bench_report(doc)
    if problems:
        for p in problems:
            print(f"  schema: {p}")
        print("FAIL: generated report does not validate")
        return 1

    out = args.out or os.path.join(REPO, f"BENCH_{ISSUE}.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench report: {len(records)} experiment(s) -> {out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
