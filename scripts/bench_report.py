#!/usr/bin/env python
"""Benchmark telemetry pipeline: run experiments, emit BENCH_<n>.json.

Runs harness experiments under an ambient metrics collector and writes
one schema-validated record per experiment (simulated time, wall-clock,
key counters, metric-series digests).  CI runs the fast subset and
gates on the schema; the full run regenerates the committed report.

The ``--wallclock`` mode instead runs the wall-clock dispatch track
(``repro.harness.wallclock``): real ``perf_counter`` throughput and
latency of the interpreter hot path, written as a schema-validated
``BENCH_wallclock.json`` and optionally gated against a baseline.

Usage::

    python scripts/bench_report.py                  # all experiments
    python scripts/bench_report.py --fast           # CI subset
    python scripts/bench_report.py fig11a fig2c     # selected
    python scripts/bench_report.py --validate BENCH_5.json
    python scripts/bench_report.py --wallclock [--fast]
    python scripts/bench_report.py --wallclock \
        --baseline benchmarks/baselines/wallclock_baseline.json
    python scripts/bench_report.py --validate-wallclock BENCH_wallclock.json
    python scripts/bench_report.py --fusion-gate   # fused-vs-unfused gate
    python scripts/bench_report.py --server 8 --server-seed 7
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.harness.__main__ import EXPERIMENTS  # noqa: E402
from repro.harness.telemetry import (  # noqa: E402
    build_bench_report,
    build_wallclock_report,
    compare_wallclock_reports,
    experiment_record,
    validate_bench_report,
    validate_wallclock_report,
)
from repro.obs import MetricsCollector, disable_metrics, enable_metrics  # noqa: E402

#: the issue number this report belongs to (BENCH_<ISSUE>.json).
ISSUE = 5

#: the issue number of the wall-clock track (BENCH_wallclock.json).
WALLCLOCK_ISSUE = 6

#: the issue number of the server observability track (BENCH_server.json).
SERVER_ISSUE = 10

#: quick experiments CI can afford on every push.
FAST_SUBSET = ("fig2c", "fig2d", "fig11a", "fig12b")


def run_experiments(names: list[str]) -> list[dict]:
    """Run each experiment under its own metrics collector.

    Records are *not* schema-validated here: validation belongs to the
    report, not the experiment loop, and runs exactly once in
    :func:`write_report` no matter how many experiments ran (the
    ``--fast`` path used to pay it per experiment).
    """
    records = []
    for name in names:
        collector = MetricsCollector()
        enable_metrics(collector)
        start = time.time()
        try:
            result = EXPERIMENTS[name]()
        finally:
            disable_metrics()
        wall = time.time() - start
        record = experiment_record(name, result, wall, collector)
        records.append(record)
        print(f"[{name}: sim {record['sim_time_s']:.3f}s, "
              f"wall {wall:.1f}s, {record['workloads']} workload(s), "
              f"{len(record['metric_series'])} metric series]")
    return records


def write_report(records: list[dict], out: str) -> int:
    """Assemble, schema-validate (once), and write the bench report."""
    doc = build_bench_report(records, issue=ISSUE)
    problems = validate_bench_report(doc)
    if problems:
        for p in problems:
            print(f"  schema: {p}")
        print("FAIL: generated report does not validate")
        return 1
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench report: {len(records)} experiment(s) -> {out}]")
    return 0


def run_wallclock(fast: bool, out_path: str | None,
                  baseline_path: str | None, tolerance: float) -> int:
    """Run the wall-clock track; optionally gate against a baseline."""
    from repro.harness.wallclock import run_track

    results = run_track(fast=fast)
    records = [r.as_record() for r in results]
    for rec in records:
        print(f"[{rec['name']}: {rec['items_per_s']:.0f} items/s, "
              f"p50 {rec['p50_ms']:.3f} ms, p99 {rec['p99_ms']:.3f} ms "
              f"({rec['repeats']}x{rec['iters_per_repeat']} iters)]")
    doc = build_wallclock_report(records, issue=WALLCLOCK_ISSUE)
    problems = validate_wallclock_report(doc)
    if problems:
        for p in problems:
            print(f"  schema: {p}")
        print("FAIL: generated wall-clock report does not validate")
        return 1

    out = out_path or os.path.join(REPO, "BENCH_wallclock.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[wall-clock report: {len(records)} workload(s) -> {out}]")

    if baseline_path is not None:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = validate_wallclock_report(baseline)
        if problems:
            for p in problems:
                print(f"  baseline schema: {p}")
            print(f"FAIL: baseline {baseline_path} does not validate")
            return 1
        regressions = compare_wallclock_reports(doc, baseline, tolerance)
        if regressions:
            for r in regressions:
                print(f"  regression: {r}")
            print(f"FAIL: {len(regressions)} wall-clock regression(s) "
                  f"vs {baseline_path}")
            return 1
        print(f"OK: no wall-clock regressions vs {baseline_path} "
              f"(tolerance {tolerance:.0%})")
    return 0


def run_server_bench(sessions: int, seed: int,
                     out_path: str | None) -> int:
    """Run the multi-tenant server demo through the bench pipeline.

    The server run's *merged* counters (substrate + every session)
    become one bench experiment record, so the schema-validated
    ``BENCH_server.json`` document carries the same key counters the
    simulated-time experiments report — plus every ``server/`` counter
    — and CI can gate on it like any other report.
    """
    from repro.common.simclock import HOST
    from repro.harness.telemetry import (
        server_report_records,
        validate_server_records,
    )
    from repro.server import run_server_demo

    start = time.time()
    report = run_server_demo(sessions, seed=seed)
    wall = time.time() - start
    merged = report.merged.counters()
    sim_time = sum(s.clock.now(HOST) for s in report.sessions)
    record = {
        "name": f"server_demo[{sessions}s,seed{seed}]",
        "wall_s": float(wall),
        "sim_time_s": float(sim_time),
        "workloads": len(report.results),
        "counters": {name: int(count)
                     for name, count in sorted(merged.items())},
        "metric_series": {},
    }
    print(f"[server: {len(report.results)} request(s), "
          f"{record['counters'].get('server/cross_session_hits', 0)} "
          f"cross-session hit(s), wall {wall:.1f}s]")
    problems = validate_server_records(
        server_report_records(report, sessions, seed))
    if problems:
        for p in problems:
            print(f"  server schema: {p}")
        print("FAIL: server SLO records do not validate")
        return 1
    doc = build_bench_report([record], issue=SERVER_ISSUE)
    problems = validate_bench_report(doc)
    if problems:
        for p in problems:
            print(f"  schema: {p}")
        print("FAIL: generated server bench report does not validate")
        return 1
    out = out_path or os.path.join(REPO, "BENCH_server.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[server bench report -> {out}]")
    return 0 if report.ok else 1


#: gate workloads where fusion must fire: instruction count AND
#: cpu-allocated bytes must *strictly* drop fused vs unfused.
FUSION_MUST_DROP = ("cellwise_chain", "matmul_epilogue")

#: gate workloads where the reuse-aware gate must refuse to fuse:
#: counters must be *identical* fused vs unfused.
FUSION_MUST_HOLD = ("quickstart_reuse", "fig11b_reuse")


def _fusion_gate_workloads() -> dict:
    """Deterministic sim-counter workloads for the fusion gate.

    Each thunk builds its own sessions (so the ambient fusion override
    set by the caller lands in ``MemphisConfig.__post_init__``) and
    returns ``{counter_name: value}``.
    """
    import numpy as np

    from repro.common.config import MemphisConfig, ReuseMode
    from repro.common.stats import CPU_BYTES_ALLOCATED, INSTRUCTIONS_EXECUTED
    from repro.core.session import Session
    from repro.workloads.micro import run_reuse_overhead

    def _counters(session):
        return {
            INSTRUCTIONS_EXECUTED:
                session.stats.get(INSTRUCTIONS_EXECUTED),
            CPU_BYTES_ALLOCATED:
                session.stats.get(CPU_BYTES_ALLOCATED),
        }

    def cellwise_chain():
        # the wall-clock track's cell-wise pipeline (ReuseMode.NONE):
        # the maximal *,+,sigmoid,*,relu run must fuse to 1 instruction
        config = MemphisConfig.memphis()
        config.reuse_mode = ReuseMode.NONE
        session = Session(config)
        data = (np.arange(64.0 * 64).reshape(64, 64) % 23.0) / 23.0 - 0.5
        X = session.read(data, "X")
        for _ in range(4):
            (((X * 2.0) + 1.0).sigmoid() * 0.5).relu().compute()
        return _counters(session)

    def matmul_epilogue():
        config = MemphisConfig.memphis()
        config.reuse_mode = ReuseMode.NONE
        session = Session(config)
        rng = np.random.default_rng(3)
        A = session.read(rng.random((48, 32)), "A")
        B = session.read(rng.random((32, 16)), "B")
        ((A @ B) * 0.5).relu().compute()
        return _counters(session)

    def quickstart_reuse():
        # full MEMPHIS reuse: every intermediate is a retention
        # candidate, so the reuse-aware gate must leave the plan alone
        session = Session(MemphisConfig.memphis())
        rng = np.random.default_rng(5)
        X = session.read(rng.random((64, 8)), "X")
        y = session.read(rng.random((64, 1)), "y")
        w = session.read(np.zeros((8, 1)), "w")
        for reg in (0.01, 0.1, 0.01):
            grad = X.t() @ (X @ w) - X.t() @ y + reg * w
            (w - 0.002 * grad).compute()
        return _counters(session)

    def fig11b_reuse():
        # fig11b's L2SVM reuse-overhead micro under the full reuse
        # config: instcount must be byte-for-byte unchanged by --fusion
        result = run_reuse_overhead("Reuse", input_bytes=800,
                                    iterations=30, reuse_fraction=0.4)
        return {key: int(result.counters.get(key, 0))
                for key in (INSTRUCTIONS_EXECUTED, CPU_BYTES_ALLOCATED)}

    return {
        "cellwise_chain": cellwise_chain,
        "matmul_epilogue": matmul_epilogue,
        "quickstart_reuse": quickstart_reuse,
        "fig11b_reuse": fig11b_reuse,
    }


def run_fusion_gate() -> int:
    """Fused-vs-unfused instruction-count gate (CI).

    Runs every gate workload twice — baseline, then with the ambient
    fusion override installed — and compares the sim counters:

    * ``runtime/instructions_executed`` must never rise under fusion;
    * on :data:`FUSION_MUST_DROP` workloads both the instruction count
      and ``cpu/bytes_allocated`` must *strictly* drop;
    * on :data:`FUSION_MUST_HOLD` workloads (reuse modes where the
      lineage cache retains intermediates) all counters must be
      identical — the reuse-aware gate refused to fuse.
    """
    from repro.common.config import (
        clear_fusion_override,
        install_fusion_override,
    )
    from repro.common.stats import CPU_BYTES_ALLOCATED, INSTRUCTIONS_EXECUTED

    workloads = _fusion_gate_workloads()
    failures: list[str] = []
    for name, thunk in workloads.items():
        clear_fusion_override()
        base = thunk()
        install_fusion_override(True)
        try:
            fused = thunk()
        finally:
            clear_fusion_override()
        bi, fi = base[INSTRUCTIONS_EXECUTED], fused[INSTRUCTIONS_EXECUTED]
        bb, fb = base[CPU_BYTES_ALLOCATED], fused[CPU_BYTES_ALLOCATED]
        print(f"[{name}: instructions {bi} -> {fi}, "
              f"cpu bytes {bb} -> {fb}]")
        if fi > bi:
            failures.append(f"{name}: instruction count ROSE {bi} -> {fi}")
        if name in FUSION_MUST_DROP:
            if not fi < bi:
                failures.append(f"{name}: instruction count did not "
                                f"strictly drop ({bi} -> {fi})")
            if not fb < bb:
                failures.append(f"{name}: cpu bytes allocated did not "
                                f"strictly drop ({bb} -> {fb})")
        if name in FUSION_MUST_HOLD and (bi, bb) != (fi, fb):
            failures.append(f"{name}: counters changed under a reuse "
                            f"mode that retains intermediates "
                            f"({bi},{bb}) -> ({fi},{fb})")
    if failures:
        for f in failures:
            print(f"  gate: {f}")
        print(f"FAIL: {len(failures)} fusion-gate violation(s)")
        return 1
    print(f"OK: fusion gate holds over {len(workloads)} workload(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python scripts/bench_report.py",
        description="Run harness experiments and emit a schema-validated "
                    "benchmark telemetry report.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--fast", action="store_true",
                        help=f"run the CI subset only: {', '.join(FAST_SUBSET)}")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help=f"output path (default: BENCH_{ISSUE}.json "
                             f"in the repo root)")
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing report and exit")
    parser.add_argument("--wallclock", action="store_true",
                        help="run the wall-clock dispatch track instead of "
                             "the simulated-time experiments")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="with --wallclock: compare against a baseline "
                             "report and exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="with --baseline: allowed fractional "
                             "items/s drop (default 0.25)")
    parser.add_argument("--validate-wallclock", metavar="PATH", default=None,
                        help="validate an existing wall-clock report and exit")
    parser.add_argument("--fusion-gate", action="store_true",
                        help="run the fused-vs-unfused instruction-count "
                             "gate: instcount must strictly drop on "
                             "cell-wise chains and never rise elsewhere")
    parser.add_argument("--server", metavar="N", type=int, default=None,
                        help="run the multi-tenant server demo with N "
                             "sessions and emit its merged counters as a "
                             "schema-validated BENCH_server.json")
    parser.add_argument("--server-seed", metavar="SEED", type=int, default=0,
                        help="with --server: deterministic interleave seed")
    args = parser.parse_args(argv)

    if args.fusion_gate:
        return run_fusion_gate()

    if args.server is not None:
        return run_server_bench(args.server, args.server_seed, args.out)

    if args.validate_wallclock is not None:
        with open(args.validate_wallclock, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        problems = validate_wallclock_report(doc)
        if problems:
            for p in problems:
                print(f"  schema: {p}")
            print(f"FAIL: {len(problems)} problem(s) in "
                  f"{args.validate_wallclock}")
            return 1
        print(f"OK: {args.validate_wallclock} is a valid wall-clock report "
              f"({len(doc['workloads'])} workload(s))")
        return 0

    if args.wallclock:
        return run_wallclock(args.fast, args.out, args.baseline,
                             args.tolerance)

    if args.validate is not None:
        with open(args.validate, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        problems = validate_bench_report(doc)
        if problems:
            for p in problems:
                print(f"  schema: {p}")
            print(f"FAIL: {len(problems)} problem(s) in {args.validate}")
            return 1
        print(f"OK: {args.validate} is a valid bench report "
              f"({len(doc['experiments'])} experiment(s))")
        return 0

    if args.fast:
        selected = list(FAST_SUBSET)
    else:
        selected = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in selected if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    records = run_experiments(selected)
    out = args.out or os.path.join(REPO, f"BENCH_{ISSUE}.json")
    return write_report(records, out)


if __name__ == "__main__":
    sys.exit(main())
