#!/usr/bin/env python
"""Benchmark telemetry pipeline: run experiments, emit BENCH_<n>.json.

Runs harness experiments under an ambient metrics collector and writes
one schema-validated record per experiment (simulated time, wall-clock,
key counters, metric-series digests).  CI runs the fast subset and
gates on the schema; the full run regenerates the committed report.

The ``--wallclock`` mode instead runs the wall-clock dispatch track
(``repro.harness.wallclock``): real ``perf_counter`` throughput and
latency of the interpreter hot path, written as a schema-validated
``BENCH_wallclock.json`` and optionally gated against a baseline.

Usage::

    python scripts/bench_report.py                  # all experiments
    python scripts/bench_report.py --fast           # CI subset
    python scripts/bench_report.py fig11a fig2c     # selected
    python scripts/bench_report.py --validate BENCH_5.json
    python scripts/bench_report.py --wallclock [--fast]
    python scripts/bench_report.py --wallclock \
        --baseline benchmarks/baselines/wallclock_baseline.json
    python scripts/bench_report.py --validate-wallclock BENCH_wallclock.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.harness.__main__ import EXPERIMENTS  # noqa: E402
from repro.harness.telemetry import (  # noqa: E402
    build_bench_report,
    build_wallclock_report,
    compare_wallclock_reports,
    experiment_record,
    validate_bench_report,
    validate_wallclock_report,
)
from repro.obs import MetricsCollector, disable_metrics, enable_metrics  # noqa: E402

#: the issue number this report belongs to (BENCH_<ISSUE>.json).
ISSUE = 5

#: the issue number of the wall-clock track (BENCH_wallclock.json).
WALLCLOCK_ISSUE = 6

#: quick experiments CI can afford on every push.
FAST_SUBSET = ("fig2c", "fig2d", "fig11a", "fig12b")


def run_experiments(names: list[str]) -> list[dict]:
    """Run each experiment under its own metrics collector."""
    records = []
    for name in names:
        collector = MetricsCollector()
        enable_metrics(collector)
        start = time.time()
        try:
            result = EXPERIMENTS[name]()
        finally:
            disable_metrics()
        wall = time.time() - start
        record = experiment_record(name, result, wall, collector)
        records.append(record)
        print(f"[{name}: sim {record['sim_time_s']:.3f}s, "
              f"wall {wall:.1f}s, {record['workloads']} workload(s), "
              f"{len(record['metric_series'])} metric series]")
    return records


def run_wallclock(fast: bool, out_path: str | None,
                  baseline_path: str | None, tolerance: float) -> int:
    """Run the wall-clock track; optionally gate against a baseline."""
    from repro.harness.wallclock import run_track

    results = run_track(fast=fast)
    records = [r.as_record() for r in results]
    for rec in records:
        print(f"[{rec['name']}: {rec['items_per_s']:.0f} items/s, "
              f"p50 {rec['p50_ms']:.3f} ms, p99 {rec['p99_ms']:.3f} ms "
              f"({rec['repeats']}x{rec['iters_per_repeat']} iters)]")
    doc = build_wallclock_report(records, issue=WALLCLOCK_ISSUE)
    problems = validate_wallclock_report(doc)
    if problems:
        for p in problems:
            print(f"  schema: {p}")
        print("FAIL: generated wall-clock report does not validate")
        return 1

    out = out_path or os.path.join(REPO, "BENCH_wallclock.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[wall-clock report: {len(records)} workload(s) -> {out}]")

    if baseline_path is not None:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = validate_wallclock_report(baseline)
        if problems:
            for p in problems:
                print(f"  baseline schema: {p}")
            print(f"FAIL: baseline {baseline_path} does not validate")
            return 1
        regressions = compare_wallclock_reports(doc, baseline, tolerance)
        if regressions:
            for r in regressions:
                print(f"  regression: {r}")
            print(f"FAIL: {len(regressions)} wall-clock regression(s) "
                  f"vs {baseline_path}")
            return 1
        print(f"OK: no wall-clock regressions vs {baseline_path} "
              f"(tolerance {tolerance:.0%})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python scripts/bench_report.py",
        description="Run harness experiments and emit a schema-validated "
                    "benchmark telemetry report.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--fast", action="store_true",
                        help=f"run the CI subset only: {', '.join(FAST_SUBSET)}")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help=f"output path (default: BENCH_{ISSUE}.json "
                             f"in the repo root)")
    parser.add_argument("--validate", metavar="PATH", default=None,
                        help="validate an existing report and exit")
    parser.add_argument("--wallclock", action="store_true",
                        help="run the wall-clock dispatch track instead of "
                             "the simulated-time experiments")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="with --wallclock: compare against a baseline "
                             "report and exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="with --baseline: allowed fractional "
                             "items/s drop (default 0.25)")
    parser.add_argument("--validate-wallclock", metavar="PATH", default=None,
                        help="validate an existing wall-clock report and exit")
    args = parser.parse_args(argv)

    if args.validate_wallclock is not None:
        with open(args.validate_wallclock, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        problems = validate_wallclock_report(doc)
        if problems:
            for p in problems:
                print(f"  schema: {p}")
            print(f"FAIL: {len(problems)} problem(s) in "
                  f"{args.validate_wallclock}")
            return 1
        print(f"OK: {args.validate_wallclock} is a valid wall-clock report "
              f"({len(doc['workloads'])} workload(s))")
        return 0

    if args.wallclock:
        return run_wallclock(args.fast, args.out, args.baseline,
                             args.tolerance)

    if args.validate is not None:
        with open(args.validate, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        problems = validate_bench_report(doc)
        if problems:
            for p in problems:
                print(f"  schema: {p}")
            print(f"FAIL: {len(problems)} problem(s) in {args.validate}")
            return 1
        print(f"OK: {args.validate} is a valid bench report "
              f"({len(doc['experiments'])} experiment(s))")
        return 0

    if args.fast:
        selected = list(FAST_SUBSET)
    else:
        selected = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in selected if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    records = run_experiments(selected)
    doc = build_bench_report(records, issue=ISSUE)
    problems = validate_bench_report(doc)
    if problems:
        for p in problems:
            print(f"  schema: {p}")
        print("FAIL: generated report does not validate")
        return 1

    out = args.out or os.path.join(REPO, f"BENCH_{ISSUE}.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench report: {len(records)} experiment(s) -> {out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
